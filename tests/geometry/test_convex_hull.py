"""Unit tests for the convex hull."""

import random

from repro.geometry import Point, convex_hull, in_convex_hull

from ..conftest import regular_ngon


class TestConvexHull:
    def test_square_hull(self, unit_square):
        hull = convex_hull(unit_square + [Point(0.5, 0.5)])
        assert sorted(hull) == sorted(unit_square)

    def test_hull_is_ccw(self, unit_square):
        hull = convex_hull(unit_square)
        area2 = sum(
            a.x * b.y - b.x * a.y for a, b in zip(hull, hull[1:] + hull[:1])
        )
        assert area2 > 0  # positive signed area = CCW

    def test_single_point(self):
        assert convex_hull([Point(1, 2), Point(1, 2)]) == [Point(1, 2)]

    def test_collinear_reduces_to_extremes(self):
        pts = [Point(t, t) for t in (0.0, 1.0, 2.0, 3.5)]
        hull = convex_hull(pts)
        assert sorted(hull) == [Point(0, 0), Point(3.5, 3.5)]

    def test_collinear_interior_points_dropped_on_polygon(self):
        pts = [Point(0, 0), Point(2, 0), Point(1, 0), Point(1, 2)]
        hull = convex_hull(pts)
        assert Point(1, 0) not in hull

    def test_duplicates_ignored(self):
        pts = [Point(0, 0), Point(1, 0), Point(0, 1)] * 3
        assert len(convex_hull(pts)) == 3

    def test_random_points_inside_hull(self):
        rng = random.Random(11)
        pts = [Point(rng.uniform(0, 4), rng.uniform(0, 4)) for _ in range(30)]
        hull = convex_hull(pts)
        for p in pts:
            assert in_convex_hull(p, pts)
        assert all(h in pts for h in hull)


class TestMembership:
    def test_inside_outside_polygon(self, unit_square):
        assert in_convex_hull(Point(0.5, 0.5), unit_square)
        assert in_convex_hull(Point(0.0, 0.5), unit_square)  # boundary
        assert not in_convex_hull(Point(1.5, 0.5), unit_square)

    def test_segment_degenerate(self):
        pts = [Point(0, 0), Point(2, 0)]
        assert in_convex_hull(Point(1, 0), pts)
        assert not in_convex_hull(Point(1, 0.5), pts)

    def test_point_degenerate(self):
        pts = [Point(1, 1)]
        assert in_convex_hull(Point(1, 1), pts)
        assert not in_convex_hull(Point(1, 2), pts)

    def test_ngon_center_inside(self):
        pts = regular_ngon(9, radius=2.0)
        assert in_convex_hull(Point(0, 0), pts)
