"""Unit tests for tolerant combinatorial predicates."""

import pytest

from repro.geometry import (
    Orientation,
    Point,
    all_collinear,
    are_collinear,
    on_ray,
    orientation,
    point_on_segment,
    point_strictly_between,
    points_on_open_segment,
    points_sorted_along,
    project_parameter,
)

A = Point(0.0, 0.0)
B = Point(4.0, 0.0)


class TestOrientation:
    def test_clockwise_turn(self):
        # Walking (0,0) -> (1,0) -> (2,-1) turns clockwise (chirality).
        assert orientation(A, Point(1, 0), Point(2, -1)) is Orientation.CLOCKWISE

    def test_counterclockwise_turn(self):
        assert (
            orientation(A, Point(1, 0), Point(2, 1))
            is Orientation.COUNTERCLOCKWISE
        )

    def test_collinear_exact(self):
        assert orientation(A, Point(1, 0), Point(2, 0)) is Orientation.COLLINEAR

    def test_collinear_within_band(self, tol):
        c = Point(2.0, tol.eps_dist / 10)
        assert orientation(A, B, c) is Orientation.COLLINEAR

    def test_band_is_perpendicular_distance(self, tol):
        # The collinearity band is eps_dist of *perpendicular* distance,
        # independent of the segment length (consistent with point
        # identity): half an epsilon of sag stays collinear even at
        # kilometre scale, two epsilons never do.
        far = Point(1e6, 0.0)
        assert orientation(A, far, Point(5e5, tol.eps_dist / 2)) is (
            Orientation.COLLINEAR
        )
        assert orientation(A, far, Point(5e5, 4 * tol.eps_dist)) is not (
            Orientation.COLLINEAR
        )


class TestCollinearity:
    def test_three_points(self):
        assert are_collinear(A, B, Point(2, 0))
        assert not are_collinear(A, B, Point(2, 1))

    def test_all_collinear_on_diagonal(self):
        pts = [Point(t, 2 * t) for t in (0.0, 0.5, 1.5, -2.0)]
        assert all_collinear(pts)

    def test_all_collinear_detects_outlier(self):
        pts = [Point(t, 0.0) for t in range(5)] + [Point(2.0, 0.5)]
        assert not all_collinear(pts)

    def test_fewer_than_three_distinct_always_collinear(self):
        assert all_collinear([])
        assert all_collinear([A])
        assert all_collinear([A, A, A])
        assert all_collinear([A, B, A, B])

    def test_duplicates_do_not_confuse(self):
        pts = [A, A, B, B, Point(2, 0), Point(2, 0)]
        assert all_collinear(pts)


class TestSegments:
    def test_projection_parameter(self):
        assert project_parameter(A, B, Point(1, 0)) == 0.25
        assert project_parameter(A, B, Point(1, 3)) == 0.25  # projects down

    def test_degenerate_projection_raises(self):
        with pytest.raises(ValueError):
            project_parameter(A, A, B)

    def test_point_on_closed_segment_endpoints(self):
        assert point_on_segment(A, B, A)
        assert point_on_segment(A, B, B)

    def test_point_on_segment_interior_and_outside(self):
        assert point_on_segment(A, B, Point(2, 0))
        assert not point_on_segment(A, B, Point(5, 0))
        assert not point_on_segment(A, B, Point(-1, 0))
        assert not point_on_segment(A, B, Point(2, 1))

    def test_strictly_between_excludes_endpoints(self):
        assert point_strictly_between(A, B, Point(2, 0))
        assert not point_strictly_between(A, B, A)
        assert not point_strictly_between(A, B, B)

    def test_points_on_open_segment_filters(self):
        pts = [A, Point(1, 0), Point(2, 1), Point(3, 0), B, Point(9, 0)]
        inside = points_on_open_segment(A, B, pts)
        assert inside == [Point(1, 0), Point(3, 0)]

    def test_points_sorted_along(self):
        pts = [Point(3, 0), Point(1, 0), Point(2, 0)]
        assert points_sorted_along(A, B, pts) == [
            Point(1, 0),
            Point(2, 0),
            Point(3, 0),
        ]


class TestRays:
    def test_half_line_excludes_origin(self):
        assert not on_ray(A, B, A)

    def test_half_line_contains_points_beyond_through(self):
        assert on_ray(A, B, Point(10, 0))
        assert on_ray(A, B, Point(2, 0))

    def test_half_line_excludes_backwards(self):
        assert not on_ray(A, B, Point(-3, 0))

    def test_half_line_excludes_off_line(self):
        assert not on_ray(A, B, Point(2, 0.5))

    def test_degenerate_ray_raises(self):
        with pytest.raises(ValueError):
            on_ray(A, A, B)
