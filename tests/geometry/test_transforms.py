"""Unit tests for orientation-preserving frames (chirality)."""

import math
import random

import pytest

from repro.geometry import (
    IDENTITY_FRAME,
    Frame,
    Point,
    clockwise_angle,
    random_frame,
)


class TestFrameBasics:
    def test_identity_roundtrip(self):
        p = Point(3.5, -2.25)
        assert IDENTITY_FRAME.to_local(p) == p
        assert IDENTITY_FRAME.to_global(p) == p

    def test_origin_maps_to_zero(self):
        f = Frame(origin=Point(2, 3), theta=0.7, scale=2.5)
        assert f.to_local(Point(2, 3)).close_to(Point(0, 0))

    def test_roundtrip_general(self):
        f = Frame(origin=Point(-1, 4), theta=1.234, scale=0.3)
        p = Point(7.7, -8.8)
        assert f.to_global(f.to_local(p)).close_to(p)
        assert f.to_local(f.to_global(p)).close_to(p)

    def test_scale_applies_to_distances(self):
        f = Frame(origin=Point(0, 0), theta=0.0, scale=10.0)
        assert math.isclose(f.to_local(Point(1, 0)).norm(), 10.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            Frame(origin=Point(0, 0), theta=0.0, scale=-1.0)
        with pytest.raises(ValueError):
            Frame(origin=Point(0, 0), theta=0.0, scale=0.0)

    def test_with_origin_preserves_rotation_scale(self):
        f = Frame(origin=Point(0, 0), theta=0.5, scale=2.0)
        g = f.with_origin(Point(5, 5))
        assert g.theta == f.theta and g.scale == f.scale
        assert g.to_local(Point(5, 5)).close_to(Point(0, 0))


class TestChirality:
    """The load-bearing property: frames preserve the clockwise sense."""

    def test_clockwise_angle_invariant_under_frames(self):
        rng = random.Random(4)
        apex = Point(1.0, -2.0)
        u = Point(3.0, 0.0)
        v = Point(-1.0, 1.0)
        reference = clockwise_angle(u, apex, v)
        for _ in range(25):
            f = random_frame(rng, origin=Point(rng.uniform(-5, 5), rng.uniform(-5, 5)))
            a = clockwise_angle(f.to_local(u), f.to_local(apex), f.to_local(v))
            assert math.isclose(a, reference, abs_tol=1e-9)

    def test_distance_ratios_invariant(self):
        rng = random.Random(5)
        a, b, c = Point(0, 0), Point(1, 2), Point(-3, 1)
        reference = a.distance_to(b) / a.distance_to(c)
        for _ in range(10):
            f = random_frame(rng)
            la, lb, lc = f.to_local(a), f.to_local(b), f.to_local(c)
            assert math.isclose(
                la.distance_to(lb) / la.distance_to(lc), reference,
                rel_tol=1e-9,
            )


class TestRandomFrame:
    def test_deterministic_in_rng(self):
        f1 = random_frame(random.Random(9))
        f2 = random_frame(random.Random(9))
        assert f1 == f2

    def test_scale_range_respected(self):
        rng = random.Random(2)
        for _ in range(50):
            f = random_frame(rng, scale_range=(0.5, 2.0))
            assert 0.5 <= f.scale <= 2.0

    def test_bad_scale_range_rejected(self):
        with pytest.raises(ValueError):
            random_frame(random.Random(0), scale_range=(0.0, 1.0))
        with pytest.raises(ValueError):
            random_frame(random.Random(0), scale_range=(3.0, 1.0))
