"""Unit tests for Line / Segment / HalfLine value objects."""

import pytest

from repro.geometry import HalfLine, Line, Point, Segment

A = Point(0.0, 0.0)
B = Point(4.0, 0.0)


class TestLine:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Line(A, A)

    def test_contains(self):
        line = Line(A, B)
        assert line.contains(Point(-7, 0))
        assert not line.contains(Point(1, 1))

    def test_parameter_roundtrip(self):
        line = Line(A, B)
        p = line.point_at(0.75)
        assert p == Point(3, 0)
        assert line.parameter_of(p) == 0.75

    def test_project_drops_perpendicular(self):
        line = Line(A, B)
        assert line.project(Point(2, 5)).close_to(Point(2, 0))


class TestSegment:
    def test_length_and_midpoint(self):
        seg = Segment(A, B)
        assert seg.length() == 4.0
        assert seg.midpoint() == Point(2, 0)

    def test_contains_closed_vs_strict(self):
        seg = Segment(A, B)
        assert seg.contains(A)
        assert not seg.contains_strictly(A)
        assert seg.contains_strictly(Point(1, 0))

    def test_interior_points(self):
        seg = Segment(A, B)
        pts = [A, Point(2, 0), Point(3, 1), B]
        assert seg.interior_points(pts) == [Point(2, 0)]


class TestHalfLine:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            HalfLine(A, A)

    def test_contains_semantics(self):
        hf = HalfLine(A, B)
        assert hf.contains(Point(1, 0))
        assert hf.contains(Point(100, 0))
        assert not hf.contains(A)  # origin excluded per the paper
        assert not hf.contains(Point(-1, 0))

    def test_count_points_with_multiplicity(self):
        hf = HalfLine(A, B)
        pts = [Point(1, 0), Point(1, 0), Point(2, 0), Point(-1, 0), A]
        assert hf.count_points(pts) == 3
