"""Unit tests for clockwise-angle arithmetic (chirality convention)."""

import math

import pytest

from repro.geometry import (
    TWO_PI,
    Point,
    angle_sum_is_full_turn,
    clockwise_angle,
    direction_angle,
    normalize_angle,
    rotate_clockwise,
    rotate_counterclockwise,
)

O = Point(0.0, 0.0)


class TestNormalize:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            (0.0, 0.0),
            (math.pi, math.pi),
            (TWO_PI, 0.0),
            (-math.pi / 2, 3 * math.pi / 2),
            (5 * TWO_PI + 0.25, 0.25),
        ],
    )
    def test_values(self, raw, expected):
        assert math.isclose(normalize_angle(raw), expected, abs_tol=1e-12)

    def test_result_in_range(self):
        for k in range(-20, 20):
            v = normalize_angle(k * 0.7718)
            assert 0.0 <= v < TWO_PI


class TestClockwiseAngle:
    def test_quarter_turn_clockwise(self):
        # From +x to -y is a quarter turn CLOCKWISE.
        a = clockwise_angle(Point(1, 0), O, Point(0, -1))
        assert math.isclose(a, math.pi / 2)

    def test_quarter_turn_counterclockwise_reads_three_quarters(self):
        # From +x to +y clockwise requires going the long way round.
        a = clockwise_angle(Point(1, 0), O, Point(0, 1))
        assert math.isclose(a, 3 * math.pi / 2)

    def test_same_direction_is_zero(self):
        assert clockwise_angle(Point(2, 0), O, Point(5, 0)) == 0.0

    def test_apex_coincidence_raises(self):
        with pytest.raises(ValueError):
            clockwise_angle(O, O, Point(1, 0))
        with pytest.raises(ValueError):
            clockwise_angle(Point(1, 0), O, O)

    def test_antisymmetry(self):
        u, v = Point(1, 0.3), Point(-0.4, 1)
        a = clockwise_angle(u, O, v)
        b = clockwise_angle(v, O, u)
        assert math.isclose(a + b, TWO_PI)

    def test_translation_invariance(self):
        apex = Point(3.5, -2.0)
        a = clockwise_angle(apex + Point(1, 0), apex, apex + Point(0, -1))
        assert math.isclose(a, math.pi / 2)


class TestRotation:
    def test_rotate_clockwise_quarter(self):
        p = rotate_clockwise(Point(1, 0), O, math.pi / 2)
        assert p.close_to(Point(0, -1))

    def test_rotate_counterclockwise_quarter(self):
        p = rotate_counterclockwise(Point(1, 0), O, math.pi / 2)
        assert p.close_to(Point(0, 1))

    def test_rotations_inverse(self):
        p = Point(2.5, -1.25)
        center = Point(0.5, 0.5)
        q = rotate_counterclockwise(rotate_clockwise(p, center, 1.1), center, 1.1)
        assert q.close_to(p)

    def test_rotation_preserves_distance_to_center(self):
        center = Point(-1.0, 2.0)
        p = Point(3.0, 4.0)
        q = rotate_clockwise(p, center, 0.7)
        assert math.isclose(center.distance_to(p), center.distance_to(q))

    def test_rotation_realizes_clockwise_angle(self):
        center = Point(1.0, 1.0)
        p = Point(4.0, 1.0)
        theta = 0.9
        q = rotate_clockwise(p, center, theta)
        assert math.isclose(clockwise_angle(p, center, q), theta)


class TestAngleSum:
    def test_full_turn_accepts(self, tol):
        assert angle_sum_is_full_turn([math.pi, math.pi], tol)
        assert angle_sum_is_full_turn([TWO_PI / 3] * 3, tol)

    def test_short_sum_rejected(self, tol):
        assert not angle_sum_is_full_turn([math.pi], tol)

    def test_direction_angle_east_is_zero(self):
        assert direction_angle(O, Point(5, 0)) == 0.0
