"""Hook quarantine: a broken profiling callback never crashes the run."""

import pytest

from repro import obs
from repro.experiments.runner import Scenario, run_scenario
from repro.obs.hooks import emit_kernel, emit_round, emit_run_end


def _boom(*args):
    raise RuntimeError("hook exploded")


@pytest.fixture()
def log_records():
    records = []
    obs.log_hub.add_sink(records.append)
    yield records
    obs.log_hub.remove_sink(records.append)


def _quarantine_records(records):
    return [r for r in records if r["event"] == "hook.quarantined"]


class TestQuarantine:
    def test_raising_hook_warned_once_and_removed(self, log_records):
        seen = []
        obs.on_round(_boom)
        obs.on_round(seen.append)
        emit_round("first")
        complaints = _quarantine_records(log_records)
        assert len(complaints) == 1
        assert "hook exploded" in complaints[0]["msg"]
        assert complaints[0]["level"] == "warning"
        # The offender is gone; later rounds dispatch warning-free and
        # the healthy hook keeps firing.
        emit_round("second")
        assert len(_quarantine_records(log_records)) == 1
        assert seen == ["first", "second"]

    def test_quarantine_covers_every_hook_point(self, log_records):
        obs.on_round(_boom)
        obs.on_kernel(_boom)
        obs.on_run_end(_boom)
        emit_round("event")
        assert len(_quarantine_records(log_records)) == 1
        # Already-quarantined at the other points too: no second warning.
        emit_kernel("k", 0.1, "python")
        emit_run_end({})
        assert len(_quarantine_records(log_records)) == 1

    def test_base_exceptions_still_propagate(self):
        def interrupt(event):
            raise KeyboardInterrupt

        obs.on_round(interrupt)
        with pytest.raises(KeyboardInterrupt):
            emit_round("event")

    def test_broken_hook_does_not_break_a_simulation(self, log_records):
        scenario = Scenario(
            workload="asymmetric",
            n=6,
            f=1,
            scheduler="round-robin",
            crashes="after-move",
            movement="rigid",
            max_rounds=2_000,
        )
        obs.enable()
        seen = []
        obs.on_round(_boom)
        obs.on_round(lambda event: seen.append(event.round_index))
        result = run_scenario(scenario, 3)
        complaints = _quarantine_records(log_records)
        assert len(complaints) == 1
        assert "hook exploded" in complaints[0]["msg"]
        assert result.rounds > 0
        # Every round after the quarantine still reached the good hook.
        assert len(seen) == result.rounds
