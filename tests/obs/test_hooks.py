"""Hook quarantine: a broken profiling callback never crashes the run."""

import pytest

from repro import obs
from repro.experiments.runner import Scenario, run_scenario
from repro.obs.hooks import emit_kernel, emit_round, emit_run_end


def _boom(*args):
    raise RuntimeError("hook exploded")


class TestQuarantine:
    def test_raising_hook_warned_once_and_removed(self):
        seen = []
        obs.on_round(_boom)
        obs.on_round(seen.append)
        with pytest.warns(RuntimeWarning, match="hook exploded"):
            emit_round("first")
        # The offender is gone; later rounds dispatch warning-free and
        # the healthy hook keeps firing.
        emit_round("second")
        assert seen == ["first", "second"]

    def test_quarantine_covers_every_hook_point(self):
        obs.on_round(_boom)
        obs.on_kernel(_boom)
        obs.on_run_end(_boom)
        with pytest.warns(RuntimeWarning):
            emit_round("event")
        # Already-quarantined at the other points too: no second warning.
        emit_kernel("k", 0.1, "python")
        emit_run_end({})

    def test_base_exceptions_still_propagate(self):
        def interrupt(event):
            raise KeyboardInterrupt

        obs.on_round(interrupt)
        with pytest.raises(KeyboardInterrupt):
            emit_round("event")

    def test_broken_hook_does_not_break_a_simulation(self):
        scenario = Scenario(
            workload="asymmetric",
            n=6,
            f=1,
            scheduler="round-robin",
            crashes="after-move",
            movement="rigid",
            max_rounds=2_000,
        )
        obs.enable()
        seen = []
        obs.on_round(_boom)
        obs.on_round(lambda event: seen.append(event.round_index))
        with pytest.warns(RuntimeWarning, match="hook exploded"):
            result = run_scenario(scenario, 3)
        assert result.rounds > 0
        # Every round after the quarantine still reached the good hook.
        assert len(seen) == result.rounds
