"""Fixed log-spaced histograms: binning, merge, delta, serialization."""

import pytest

from repro.obs.histogram import DEFAULT_BOUNDS, Histogram, latency_bounds


class TestBounds:
    def test_bounds_are_deterministic(self):
        # Merge-by-addition requires every process to derive the exact
        # same boundaries; recomputation must be bit-identical.
        assert latency_bounds() == DEFAULT_BOUNDS
        assert latency_bounds() == latency_bounds()

    def test_default_span_and_resolution(self):
        assert DEFAULT_BOUNDS[0] == pytest.approx(1e-6)
        assert DEFAULT_BOUNDS[-1] == pytest.approx(1e3)
        # Nine decades at four buckets per decade, inclusive endpoints.
        assert len(DEFAULT_BOUNDS) == 37


class TestBinning:
    def test_counts_land_in_ordered_buckets(self):
        hist = Histogram()
        hist.add(1e-5)
        hist.add(1e-2)
        hist.add(1.0)
        assert hist.count == 3
        assert sum(hist.counts) == 3
        nonzero = [i for i, c in enumerate(hist.counts) if c]
        assert nonzero == sorted(nonzero)
        assert hist.total == pytest.approx(1e-5 + 1e-2 + 1.0)

    def test_underflow_and_overflow(self):
        hist = Histogram()
        hist.add(1e-9)
        hist.add(1e6)
        assert hist.counts[0] == 1
        assert hist.counts[-1] == 1

    def test_mean_and_quantile(self):
        hist = Histogram()
        assert hist.quantile(0.5) is None
        for _ in range(99):
            hist.add(1e-4)
        hist.add(10.0)
        assert hist.quantile(0.5) == pytest.approx(1e-4, rel=1.0)
        assert hist.quantile(1.0) >= 10.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)


class TestMergeAndDelta:
    def test_merge_is_elementwise_addition(self):
        a, b = Histogram(), Histogram()
        for v in (1e-5, 1e-3, 0.1):
            a.add(v)
        for v in (1e-3, 5.0):
            b.add(v)
        a.merge(b)
        assert a.count == 5
        assert a.total == pytest.approx(1e-5 + 1e-3 + 0.1 + 1e-3 + 5.0)

    def test_merge_rejects_foreign_bounds(self):
        a = Histogram()
        b = Histogram(bounds=[1.0, 2.0, 4.0])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_delta_recovers_window_contribution(self):
        hist = Histogram()
        hist.add(1e-3)
        before = Histogram.from_dict(hist.to_dict())
        hist.add(1e-2)
        hist.add(1e-2)
        window = hist.delta(before)
        assert window.count == 2
        assert window.total == pytest.approx(2e-2)
        # delta + before == after, bucket for bucket
        window.merge(before)
        assert window.counts == hist.counts

    def test_roundtrip_serialization(self):
        hist = Histogram()
        hist.add(0.5)
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.counts == hist.counts
        assert clone.count == hist.count
        assert clone.total == hist.total

    def test_from_dict_rejects_mismatched_counts(self):
        data = Histogram().to_dict()
        data["counts"] = [0, 1]
        with pytest.raises(ValueError):
            Histogram.from_dict(data)
