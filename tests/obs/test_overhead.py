"""Zero-overhead contract: disabled observability allocates nothing.

The engines guard event construction on one attribute read; this
regression test proves the guard by counting ``RoundEvent.from_record``
invocations — with observability off, the round loop must never build an
event object, in either engine.  The same contract extends to span
tracing: a disabled process must never construct a ``Span`` object.
"""

from repro import obs
from repro.experiments.runner import Scenario, run_scenario
from repro.obs.events import RoundEvent
from repro.obs.spans import Span

SMALL = Scenario(
    workload="asymmetric",
    n=6,
    f=1,
    scheduler="round-robin",
    crashes="after-move",
    movement="rigid",
    max_rounds=2_000,
)
ASYNC_SMALL = Scenario(
    workload="asymmetric",
    n=6,
    f=1,
    scheduler="round-robin",
    crashes="after-move",
    movement="rigid",
    max_rounds=2_000,
    engine="async",
)
BATCHED_SMALL = Scenario(
    workload="asymmetric",
    n=6,
    f=1,
    scheduler="round-robin",
    crashes="after-move",
    movement="rigid",
    max_rounds=2_000,
    engine="batched",
)


def _count_event_builds(monkeypatch):
    calls = {"n": 0}
    original = RoundEvent.from_record.__func__

    def counting(cls, record, engine="atom"):
        calls["n"] += 1
        return original(cls, record, engine)

    monkeypatch.setattr(RoundEvent, "from_record", classmethod(counting))
    return calls


def _count_span_builds(monkeypatch):
    calls = {"n": 0}
    original = Span.__init__

    def counting(self, *args, **kwargs):
        calls["n"] += 1
        original(self, *args, **kwargs)

    monkeypatch.setattr(Span, "__init__", counting)
    return calls


class TestNoAllocationWhenDisabled:
    def test_atom_round_loop_builds_no_events(self, monkeypatch):
        calls = _count_event_builds(monkeypatch)
        result = run_scenario(SMALL, 3)
        assert result.rounds > 0
        assert calls["n"] == 0

    def test_async_tick_loop_builds_no_events_or_records(self, monkeypatch):
        calls = _count_event_builds(monkeypatch)
        result = run_scenario(ASYNC_SMALL, 3)
        assert result.rounds > 0
        assert calls["n"] == 0
        # Without record_trace the async engine must not retain records
        # either — the recording branch is the same guarded path.
        assert result.trace is None

    def test_atom_round_loop_builds_no_spans(self, monkeypatch):
        calls = _count_span_builds(monkeypatch)
        result = run_scenario(SMALL, 3)
        assert result.rounds > 0
        assert calls["n"] == 0

    def test_async_tick_loop_builds_no_spans(self, monkeypatch):
        calls = _count_span_builds(monkeypatch)
        result = run_scenario(ASYNC_SMALL, 3)
        assert result.rounds > 0
        assert calls["n"] == 0

    def test_enabled_loop_builds_spans(self, monkeypatch):
        calls = _count_span_builds(monkeypatch)
        obs.enable()
        result = run_scenario(SMALL, 3)
        # One run span, one per round, and three phase spans per round.
        assert calls["n"] == 1 + 4 * result.rounds

    def test_spans_vetoed_but_obs_on_builds_no_spans(self, monkeypatch):
        calls = _count_span_builds(monkeypatch)
        monkeypatch.setattr(obs.tracer, "active", False)
        obs.enable()
        result = run_scenario(SMALL, 3)
        assert result.rounds > 0
        assert calls["n"] == 0

    def test_enabled_loop_builds_one_event_per_round(self, monkeypatch):
        calls = _count_event_builds(monkeypatch)
        obs.enable()
        result = run_scenario(SMALL, 3)
        assert calls["n"] == result.rounds

    def test_enabled_async_loop_builds_one_event_per_tick(self, monkeypatch):
        calls = _count_event_builds(monkeypatch)
        obs.enable()
        result = run_scenario(ASYNC_SMALL, 3)
        assert calls["n"] == result.rounds


class TestBatchedEngineOverhead:
    """The batched round loop honors the same zero-overhead contract.

    It additionally never builds per-round :class:`RoundEvent` objects
    even when enabled — per-sim event streams would defeat the point of
    batching; round-level visibility comes from metrics and spans.
    """

    def _numpy_or_skip(self):
        import pytest

        from repro.geometry import kernels

        if "numpy" not in kernels.available_backends():
            pytest.skip("NumPy not importable in this environment")

    def test_disabled_builds_no_events(self, monkeypatch):
        self._numpy_or_skip()
        calls = _count_event_builds(monkeypatch)
        result = run_scenario(BATCHED_SMALL, 3)
        assert result.rounds > 0
        assert calls["n"] == 0

    def test_disabled_builds_no_spans(self, monkeypatch):
        self._numpy_or_skip()
        calls = _count_span_builds(monkeypatch)
        result = run_scenario(BATCHED_SMALL, 3)
        assert result.rounds > 0
        assert calls["n"] == 0

    def test_enabled_builds_spans_but_no_events(self, monkeypatch):
        self._numpy_or_skip()
        events = _count_event_builds(monkeypatch)
        spans = _count_span_builds(monkeypatch)
        obs.enable()
        result = run_scenario(BATCHED_SMALL, 3)
        assert result.rounds > 0
        assert events["n"] == 0
        assert spans["n"] >= 2  # one batch_run + one per executed round

    def test_spans_vetoed_but_obs_on_builds_no_spans(self, monkeypatch):
        self._numpy_or_skip()
        calls = _count_span_builds(monkeypatch)
        monkeypatch.setattr(obs.tracer, "active", False)
        obs.enable()
        result = run_scenario(BATCHED_SMALL, 3)
        assert result.rounds > 0
        assert calls["n"] == 0
