"""RoundEvent schema: JSONL round-trip and the join to trace meta."""

import json

import pytest

from repro import obs
from repro.experiments.runner import Scenario, run_scenario
from repro.geometry import DEFAULT_TOLERANCE
from repro.obs import OBS_SCHEMA, Collector, RoundEvent, read_events
from repro.sim.trace import TraceMeta

#: n < KERNEL_MIN_N and fully deterministic components: the run is
#: bitwise identical wherever it executes, so event streams recorded in
#: different processes (or on different backends) are comparable.
SMALL = Scenario(
    workload="asymmetric",
    n=6,
    f=2,
    scheduler="round-robin",
    crashes="after-move",
    movement="rigid",
    max_rounds=2_000,
)


def scenario_meta(scenario, seed):
    return TraceMeta.for_run(
        scenario=scenario.to_dict(),
        seed=seed,
        engine_seed=scenario.engine_seed(seed),
        tol=DEFAULT_TOLERANCE,
        engine=scenario.engine,
    ).to_dict()


class TestDictRoundTrip:
    def test_event_round_trips_exactly(self):
        event = RoundEvent(
            round_index=7,
            engine="atom",
            config_class="QR",
            support=5,
            max_multiplicity=2,
            spread=3.25,
            elected_target=(1.5, -2.25),
            target_is_safe=True,
            active=(0, 1, 4),
            crashed=(2,),
            moved=(0, 4),
        )
        assert RoundEvent.from_dict(event.to_dict()) == event

    def test_none_fields_survive(self):
        event = RoundEvent(
            round_index=0,
            engine="async",
            config_class="M",
            support=3,
            max_multiplicity=4,
            spread=0.0,
            elected_target=None,
            target_is_safe=None,
            active=(),
            crashed=(),
            moved=(),
        )
        restored = RoundEvent.from_dict(event.to_dict())
        assert restored == event
        assert restored.elected_target is None
        assert restored.target_is_safe is None


class TestJsonlStream:
    def test_stream_round_trips_and_joins_to_trace_meta(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        collector = Collector()
        obs.on_round(collector)
        with obs.observability(jsonl=path, meta=scenario_meta(SMALL, 3)):
            result = run_scenario(SMALL, 3, record_trace=True)

        meta, events, run_ends = read_events(path)
        # One event per recorded round, bit-exact through JSON.
        assert len(events) == len(result.trace) == len(collector.events)
        assert events == collector.events
        # The header meta is the trace's meta: the streams join on
        # seed and scenario.
        trace_meta = result.trace.meta
        assert meta["seed"] == trace_meta.seed == 3
        assert Scenario.from_dict(meta["scenario"]) == SMALL
        assert meta["engine"] == trace_meta.engine == "atom"
        # The run-end summary closes the stream.
        assert len(run_ends) == 1
        assert run_ends[0]["verdict"] == result.verdict
        assert run_ends[0]["rounds"] == result.rounds

    def test_events_describe_their_records(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with obs.observability(jsonl=path):
            result = run_scenario(SMALL, 3, record_trace=True)
        _, events, _ = read_events(path)
        for event, record in zip(events, result.trace.records):
            assert event.round_index == record.round_index
            assert event.config_class == record.config_class.value
            assert event.crashed == record.crashed_now
            assert event.moved == record.moved
            assert event.support == len(record.config_after.support)
            assert event.spread >= 0.0

    def test_header_is_first_line(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with obs.observability(jsonl=path):
            run_scenario(SMALL, 3)
        with open(path, "r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header["format"] == OBS_SCHEMA

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "not-events.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            read_events(str(path))

    def test_async_engine_events_tagged(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        scenario = Scenario(
            workload="asymmetric",
            n=6,
            f=1,
            scheduler="round-robin",
            crashes="after-move",
            movement="rigid",
            max_rounds=2_000,
            engine="async",
        )
        with obs.observability(jsonl=path, meta=scenario_meta(scenario, 3)):
            result = run_scenario(scenario, 3)
        meta, events, run_ends = read_events(path)
        assert meta["engine"] == "async"
        assert events and all(e.engine == "async" for e in events)
        assert len(events) == result.rounds
        assert run_ends[0]["engine"] == "async"
