"""CLI surface of the telemetry layer: spans files, sweep metrics,
trace export, and the stats edge cases."""

import json
import os

import pytest

from repro.cli import main
from repro.obs import (
    OBS_SCHEMA,
    SWEEP_METRICS_SCHEMA,
    read_spans,
)


def _assert_chrome_shape(path):
    """The structural contract Perfetto needs to open the file."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    assert isinstance(document["traceEvents"], list)
    assert document["traceEvents"]
    for event in document["traceEvents"]:
        assert event["ph"] in ("X", "M")
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert isinstance(event["name"], str)
    return document


class TestSimulateSpans:
    def test_spans_jsonl_written_and_readable(self, tmp_path, capsys):
        spans_path = str(tmp_path / "run.spans.jsonl")
        code = main([
            "simulate", "--workload", "asymmetric", "--n", "6",
            "--seed", "1", "--spans-jsonl", spans_path,
        ])
        assert code == 0
        assert "span trace saved to" in capsys.readouterr().out
        meta, spans = read_spans(spans_path)
        assert meta["scenario"]["workload"] == "asymmetric"
        kinds = {s["kind"] for s in spans}
        assert {"run", "round", "phase"} <= kinds


class TestSweepMetrics:
    def test_obs_sweep_writes_metrics_next_to_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.journal.jsonl")
        code = main([
            "sweep", "--workload", "asymmetric", "--n", "6",
            "--seeds", "3", "--obs", "--journal", journal,
        ])
        assert code == 0
        metrics_path = str(tmp_path / "sweep-metrics.json")
        assert f"metrics    : {metrics_path}" in capsys.readouterr().out
        with open(metrics_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["schema"] == SWEEP_METRICS_SCHEMA
        assert document["seeds"]["total"] == 3
        assert document["seeds"]["done"] == 3
        assert document["rounds"]["total"] == sum(
            document["rounds"]["by_class"].values()
        )
        assert document["span_count"] > 0

    def test_metrics_flag_picks_the_path(self, tmp_path):
        target = str(tmp_path / "elsewhere" / "m.json")
        os.makedirs(os.path.dirname(target))
        code = main([
            "sweep", "--workload", "asymmetric", "--n", "6",
            "--seeds", "2", "--metrics", target,
        ])
        assert code == 0
        with open(target, "r", encoding="utf-8") as handle:
            assert json.load(handle)["seeds"]["done"] == 2


class TestTraceExport:
    def _spans_file(self, tmp_path):
        path = str(tmp_path / "run.spans.jsonl")
        main([
            "simulate", "--workload", "asymmetric", "--n", "6",
            "--seed", "1", "--spans-jsonl", path,
        ])
        return path

    def test_span_stream_export(self, tmp_path, capsys):
        spans_path = self._spans_file(tmp_path)
        out_path = str(tmp_path / "out.json")
        code = main(["trace-export", spans_path, "-o", out_path])
        assert code == 0
        assert "span stream" in capsys.readouterr().out
        document = _assert_chrome_shape(out_path)
        args = [
            e["args"] for e in document["traceEvents"] if e["ph"] == "X"
        ]
        assert all("span_id" in a for a in args)

    def test_default_output_path(self, tmp_path):
        spans_path = self._spans_file(tmp_path)
        assert main(["trace-export", spans_path]) == 0
        _assert_chrome_shape(
            os.path.splitext(spans_path)[0] + ".perfetto.json"
        )

    def test_event_stream_export(self, tmp_path, capsys):
        events_path = str(tmp_path / "run.obs.jsonl")
        main([
            "simulate", "--workload", "asymmetric", "--n", "6",
            "--seed", "1", "--obs-jsonl", events_path,
        ])
        out_path = str(tmp_path / "out.json")
        assert main(["trace-export", events_path, "-o", out_path]) == 0
        assert "obs event stream" in capsys.readouterr().out
        _assert_chrome_shape(out_path)

    def test_trace_archive_export(self, tmp_path, capsys):
        trace_path = str(tmp_path / "run.trace.json")
        main([
            "simulate", "--workload", "asymmetric", "--n", "6",
            "--seed", "1", "--save-trace", trace_path,
        ])
        out_path = str(tmp_path / "out.json")
        assert main(["trace-export", trace_path, "-o", out_path]) == 0
        assert "trace archive" in capsys.readouterr().out
        _assert_chrome_shape(out_path)

    def test_corrupt_spans_file_exits_2(self, tmp_path, capsys):
        spans_path = self._spans_file(tmp_path)
        with open(spans_path, "a", encoding="utf-8") as handle:
            handle.write('{"id": 1, "trunc\n')
        code = main(["trace-export", spans_path, "-o", str(tmp_path / "o")])
        assert code == 2
        assert "undecodable span line" in capsys.readouterr().err


class TestTraceExportMerge:
    def _spans_file(self, tmp_path, name, seed):
        path = str(tmp_path / name)
        main([
            "simulate", "--workload", "asymmetric", "--n", "6",
            "--seed", str(seed), "--spans-jsonl", path,
        ])
        return path

    def test_multiple_inputs_merge_with_distinct_pids(self, tmp_path,
                                                      capsys):
        first = self._spans_file(tmp_path, "a.spans.jsonl", 1)
        second = self._spans_file(tmp_path, "b.spans.jsonl", 2)
        out_path = str(tmp_path / "merged.json")
        code = main(["trace-export", first, second, "-o", out_path])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("span stream") == 2
        document = _assert_chrome_shape(out_path)
        pids = {e["pid"] for e in document["traceEvents"]}
        assert pids == {0, 1}

    def test_pid_flag_offsets_every_track_group(self, tmp_path):
        first = self._spans_file(tmp_path, "a.spans.jsonl", 1)
        second = self._spans_file(tmp_path, "b.spans.jsonl", 2)
        out_path = str(tmp_path / "merged.json")
        assert main([
            "trace-export", first, second, "--pid", "10", "-o", out_path,
        ]) == 0
        document = _assert_chrome_shape(out_path)
        assert {e["pid"] for e in document["traceEvents"]} == {10, 11}


class TestStatsOnLogFiles:
    def _log_file(self, tmp_path):
        from repro.obs.log import LogJsonlSink, get_logger, hub

        path = str(tmp_path / "daemon.log.jsonl")
        sink = LogJsonlSink(path, meta={"source": "unit-test"})
        hub.add_sink(sink)
        try:
            log = get_logger("repro.unit")
            log.info("http.access", "request", status=200)
            log.info("http.access", "request", status=200)
            log.warn_once("pool.broken", "pool.worker_lost", "gone")
        finally:
            hub.remove_sink(sink)
            sink.close()
        return path

    def test_log_file_gets_level_event_tables(self, tmp_path, capsys):
        path = self._log_file(tmp_path)
        code = main(["stats", path])
        out = capsys.readouterr().out
        assert code == 0
        assert "structured log, 3 records" in out
        assert "source=unit-test" in out
        assert "http.access" in out
        assert "pool.worker_lost" in out
        # The warn-once table names the key that fired.
        assert "pool.broken" in out

    def test_round_event_paths_still_work(self, tmp_path, capsys):
        # The log reader must not swallow the existing stats inputs.
        events_path = str(tmp_path / "run.obs.jsonl")
        main([
            "simulate", "--workload", "asymmetric", "--n", "6",
            "--seed", "1", "--obs-jsonl", events_path,
        ])
        assert main(["stats", events_path]) == 0
        assert "obs event stream" in capsys.readouterr().out


class TestStatsEdgeCases:
    def test_spans_file_gets_redirected_in_one_line(self, tmp_path, capsys):
        spans_path = str(tmp_path / "run.spans.jsonl")
        main([
            "simulate", "--workload", "asymmetric", "--n", "6",
            "--seed", "1", "--spans-jsonl", spans_path,
        ])
        code = main(["stats", spans_path])
        err = capsys.readouterr().err
        assert code == 2
        assert "repro-spans-v1 span stream" in err
        assert "trace-export" in err

    def test_empty_event_stream_reported_not_tabulated(self, tmp_path,
                                                       capsys):
        path = tmp_path / "empty.obs.jsonl"
        path.write_text(
            json.dumps({"format": OBS_SCHEMA, "meta": None}) + "\n"
        )
        code = main(["stats", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "no round events recorded" in out
        assert "obs-disabled run" in out

    def test_corrupt_event_stream_blames_the_right_format(self, tmp_path,
                                                          capsys):
        path = tmp_path / "bad.obs.jsonl"
        path.write_text(
            json.dumps({"format": OBS_SCHEMA, "meta": None})
            + '\n{"round": 0, "trunc\n'
        )
        code = main(["stats", str(path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err
