"""Shared hygiene for observability tests.

The obs layer is process-wide state (one toggle, one metrics registry,
one hook list); every test in this package starts from and returns to
the pristine disabled state so tests cannot leak instrumentation into
each other — or into the rest of the suite.
"""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def pristine_obs():
    obs.disable()
    obs.clear_hooks()
    obs.metrics.reset()
    obs.tracer.reset()
    obs.log_hub.reset()
    yield
    obs.disable()
    obs.clear_hooks()
    obs.metrics.reset()
    obs.tracer.reset()
    obs.log_hub.reset()
