"""Counters, stats, kernel timers, hooks, and the process-wide toggle."""

import os

import pytest

from repro import obs
from repro.geometry import kernels
from repro.obs.metrics import Metrics, Stat

NUMPY_AVAILABLE = "numpy" in kernels.available_backends()

needs_numpy = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="NumPy not importable in this environment"
)


class TestStat:
    def test_running_aggregate(self):
        stat = Stat()
        for value in (2.0, 4.0, 9.0):
            stat.add(value)
        assert stat.count == 3
        assert stat.total == 15.0
        assert stat.mean == 5.0
        assert stat.min == 2.0
        assert stat.max == 9.0

    def test_empty_stat_serializes_without_infinities(self):
        payload = Stat().to_dict()
        assert payload["count"] == 0
        assert payload["min"] is None and payload["max"] is None


class TestMetricsRegistry:
    def test_counters_and_stats(self):
        registry = Metrics()
        registry.inc("a")
        registry.inc("a", 2)
        registry.observe("latency", 0.5)
        registry.observe("latency", 1.5)
        assert registry.counter("a") == 3
        assert registry.counter("missing") == 0
        snapshot = registry.snapshot()
        assert snapshot["counters"]["a"] == 3
        assert snapshot["stats"]["latency"]["mean"] == 1.0

    def test_kernel_rows_sorted_by_total_time(self):
        registry = Metrics()
        registry.record_kernel("cheap", 0.001, "numpy")
        registry.record_kernel("hot", 0.5, "numpy")
        registry.record_kernel("hot", 0.5, "numpy")
        rows = registry.kernels()
        assert [row["kernel"] for row in rows] == ["hot", "cheap"]
        assert rows[0]["calls"] == 2
        assert rows[0]["total_s"] == 1.0

    def test_reset_drops_everything(self):
        registry = Metrics()
        registry.inc("a")
        registry.observe("s", 1.0)
        registry.record_kernel("k", 0.1, "numpy")
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "stats": {},
            "kernels": [],
            "hists": {},
        }


class TestToggle:
    def test_enable_exports_env_for_workers(self):
        obs.enable()
        assert obs.is_enabled()
        assert os.environ.get("REPRO_OBS") == "1"
        obs.disable()
        assert not obs.is_enabled()
        assert "REPRO_OBS" not in os.environ

    def test_observability_context_restores_disabled(self):
        assert not obs.is_enabled()
        with obs.observability():
            assert obs.is_enabled()
        assert not obs.is_enabled()

    def test_observability_context_preserves_enabled(self):
        obs.enable()
        with obs.observability():
            assert obs.is_enabled()
        assert obs.is_enabled()


class TestKernelInstrumentation:
    @needs_numpy
    def test_timed_kernels_record_when_enabled(self):
        coords = [(0.0, 0.0), (3.0, 4.0), (1.0, 1.0)]
        with kernels.backend("numpy"):
            obs.enable()
            assert kernels.pairwise_diameter(coords) == 5.0
        rows = obs.metrics.kernels()
        assert any(
            row["kernel"] == "pairwise_diameter" and row["backend"] == "numpy"
            for row in rows
        )

    @needs_numpy
    def test_disabled_kernels_record_nothing(self):
        coords = [(0.0, 0.0), (3.0, 4.0)]
        with kernels.backend("numpy"):
            assert kernels.pairwise_diameter(coords) == 5.0
        assert obs.metrics.kernels() == []

    @needs_numpy
    def test_on_kernel_hook_sees_calls(self):
        seen = []
        obs.on_kernel(lambda name, seconds, backend: seen.append(name))
        coords = [(0.0, 0.0), (1.0, 0.0)]
        with kernels.backend("numpy"):
            obs.enable()
            kernels.pairwise_diameter(coords)
        assert "pairwise_diameter" in seen


class TestHooks:
    def test_remove_hook(self):
        seen = []
        hook = obs.on_round(seen.append)
        obs.emit_round("event")
        obs.remove_hook(hook)
        obs.emit_round("event")
        assert seen == ["event"]
