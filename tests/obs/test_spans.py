"""Span tracer: hierarchy, ring buffer, sinks, JSONL I/O, Chrome export."""

import json

import pytest

from repro import obs
from repro.experiments.runner import Scenario, run_scenario
from repro.obs.spans import (
    SPANS_SCHEMA,
    SpanJsonlSink,
    Tracer,
    chrome_trace_events,
    read_spans,
)
from repro.resilience import TraceFormatError


class TestTracer:
    def test_parent_child_nesting(self):
        tracer = Tracer()
        run = tracer.begin("run", "run")
        round_ = tracer.begin("round", "round")
        phase = tracer.begin("look", "phase")
        assert run.parent_id is None
        assert round_.parent_id == run.span_id
        assert phase.parent_id == round_.span_id
        tracer.end(phase)
        tracer.end(round_)
        tracer.end(run)
        # Completion order is leaf-first; ids are unique.
        tail = tracer.tail()
        assert [s.name for s in tail] == ["look", "round", "run"]
        assert len({s.span_id for s in tail}) == 3
        assert all(s.duration_ns >= 0 for s in tail)

    def test_end_unwinds_missed_children(self):
        # An engine exception path may skip a child's end(); ending the
        # parent must not corrupt the stack.
        tracer = Tracer()
        run = tracer.begin("run", "run")
        tracer.begin("round", "round")  # never ended
        tracer.end(run)
        after = tracer.begin("next", "run")
        assert after.parent_id is None

    def test_complete_attributes_to_open_span(self):
        tracer = Tracer()
        phase = tracer.begin("compute", "phase")
        leaf = tracer.complete("pairwise_diameter", "kernel", 100, 50,
                               attrs={"backend": "numpy"})
        assert leaf.parent_id == phase.span_id
        assert leaf.duration_ns == 50
        tracer.end(phase)

    def test_tail_slices_by_seq(self):
        tracer = Tracer()
        tracer.end(tracer.begin("a", "phase"))
        mark = tracer.seq
        tracer.end(tracer.begin("b", "phase"))
        tracer.end(tracer.begin("c", "phase"))
        assert [s.name for s in tracer.tail(since_seq=mark)] == ["b", "c"]

    def test_tail_is_bounded(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.end(tracer.begin(f"s{i}", "phase"))
        assert [s.name for s in tracer.tail()] == ["s6", "s7", "s8", "s9"]

    def test_broken_sink_warned_once_and_removed(self):
        from repro import obs

        records = []
        obs.log_hub.add_sink(records.append)
        try:
            tracer = Tracer()
            seen = []

            def broken(span):
                raise RuntimeError("boom")

            tracer.add_sink(broken)
            tracer.add_sink(seen.append)
            tracer.end(tracer.begin("a", "phase"))
            complaints = [
                r for r in records if r["event"] == "span_sink.quarantined"
            ]
            assert len(complaints) == 1
            assert "boom" in complaints[0]["msg"]
            # Second emit: the offender is gone, the healthy sink still runs.
            tracer.end(tracer.begin("b", "phase"))
            assert [s.name for s in seen] == ["a", "b"]
            assert (
                len([r for r in records if r["event"] == "span_sink.quarantined"])
                == 1
            )
        finally:
            obs.log_hub.remove_sink(records.append)

    def test_reset_drops_everything_but_keeps_active(self):
        tracer = Tracer()
        tracer.active = True
        tracer.end(tracer.begin("a", "phase"))
        tracer.reset()
        assert tracer.tail() == []
        assert tracer.seq == 0
        assert tracer.active


class TestEngineSpans:
    SMALL = Scenario(
        workload="asymmetric",
        n=6,
        f=1,
        scheduler="round-robin",
        crashes="after-move",
        movement="rigid",
        max_rounds=2_000,
    )

    def test_atom_run_emits_full_hierarchy(self):
        obs.enable()
        result = run_scenario(self.SMALL, 3)
        spans = obs.tracer.tail()
        by_kind = {}
        for span in spans:
            by_kind.setdefault(span.kind, []).append(span)
        assert len(by_kind["run"]) == 1
        assert len(by_kind["round"]) == result.rounds
        assert len(by_kind["phase"]) == 3 * result.rounds
        run_span = by_kind["run"][0]
        assert run_span.attrs["verdict"] == result.verdict
        assert run_span.attrs["rounds"] == result.rounds
        ids = {s.span_id for s in spans}
        assert all(s.parent_id in ids for s in spans if s.parent_id)
        # Phase spans nest under rounds, rounds under the run.
        round_ids = {s.span_id for s in by_kind["round"]}
        assert all(s.parent_id in round_ids for s in by_kind["phase"])
        assert all(
            s.parent_id == run_span.span_id for s in by_kind["round"]
        )

    def test_async_run_emits_per_activation_phases(self):
        obs.enable()
        scenario = Scenario(
            workload="asymmetric",
            n=6,
            f=1,
            scheduler="round-robin",
            crashes="after-move",
            movement="rigid",
            max_rounds=2_000,
            engine="async",
        )
        result = run_scenario(scenario, 3)
        spans = obs.tracer.tail()
        phases = [s for s in spans if s.kind == "phase"]
        assert phases
        # Every CORDA phase span is labelled with its robot.
        assert all("robot" in (s.attrs or {}) for s in phases)
        runs = [s for s in spans if s.kind == "run"]
        assert len(runs) == 1 and runs[0].attrs["engine"] == "async"
        assert result.rounds > 0

    def test_instrumentation_does_not_change_results(self):
        plain = run_scenario(self.SMALL, 7)
        obs.enable()
        traced = run_scenario(self.SMALL, 7)
        assert traced.verdict == plain.verdict
        assert traced.rounds == plain.rounds
        assert traced.final_positions == plain.final_positions


class TestSpansJsonl:
    def _write_stream(self, tmp_path, meta=None):
        tracer = Tracer()
        path = str(tmp_path / "run.spans.jsonl")
        sink = SpanJsonlSink(path, meta=meta)
        tracer.add_sink(sink.write)
        run = tracer.begin("run", "run", attrs={"seed": 1})
        tracer.end(tracer.begin("round", "round"))
        tracer.end(run)
        sink.close()
        return path

    def test_roundtrip(self, tmp_path):
        meta = {"scenario": {"workload": "random", "n": 4}, "seed": 1}
        path = self._write_stream(tmp_path, meta=meta)
        read_meta, spans = read_spans(path)
        assert read_meta == meta
        assert [s["name"] for s in spans] == ["round", "run"]
        assert spans[0]["parent"] == spans[1]["id"]

    def test_foreign_file_raises_value_error(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            read_spans(str(path))

    def test_corrupt_line_raises_trace_format_error(self, tmp_path):
        path = self._write_stream(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"id": 99, "truncat\n')
        with pytest.raises(TraceFormatError) as excinfo:
            read_spans(path)
        assert excinfo.value.line == 4

    def test_non_span_line_raises_trace_format_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"format": SPANS_SCHEMA, "meta": None})
            + "\n[1, 2, 3]\n"
        )
        with pytest.raises(TraceFormatError):
            read_spans(str(path))


class TestChromeExport:
    def test_complete_events_shape(self):
        spans = [
            {"id": 1, "parent": None, "name": "run", "kind": "run",
             "start_ns": 1_000, "dur_ns": 5_000},
            {"id": 2, "parent": 1, "name": "round", "kind": "round",
             "start_ns": 2_000, "dur_ns": 1_000, "attrs": {"round": 0}},
        ]
        events = chrome_trace_events(spans, pid=7, process_name="seed 1")
        meta_events = [e for e in events if e["ph"] == "M"]
        assert meta_events[0]["args"]["name"] == "seed 1"
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        round_event = complete[1]
        assert round_event["ts"] == pytest.approx(2.0)
        assert round_event["dur"] == pytest.approx(1.0)
        assert round_event["pid"] == 7
        assert round_event["cat"] == "round"
        assert round_event["args"]["parent_id"] == 1
        assert round_event["args"]["round"] == 0
