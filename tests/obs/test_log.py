"""Structured logging hub: levels, warn-once, rate limit, sinks, I/O."""

import json
import logging

import pytest

from repro import obs
from repro.obs.log import (
    LOG_SCHEMA,
    LogHub,
    LogJsonlSink,
    get_logger,
    hub,
    read_log,
    summarize_log,
)


@pytest.fixture()
def records():
    collected = []
    hub.add_sink(collected.append)
    yield collected
    hub.remove_sink(collected.append)


class TestLeveledRecords:
    def test_record_shape(self, records):
        log = get_logger("repro.test")
        log.info("unit.event", "something happened", detail=7)
        assert len(records) == 1
        record = records[0]
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"
        assert record["event"] == "unit.event"
        assert record["msg"] == "something happened"
        assert record["fields"] == {"detail": 7}
        assert isinstance(record["ts"], float)

    def test_all_levels_emit(self, records):
        log = get_logger("repro.test")
        log.debug("e.d", "d")
        log.info("e.i", "i")
        log.warning("e.w", "w")
        log.error("e.e", "e")
        assert [r["level"] for r in records] == [
            "debug", "info", "warning", "error",
        ]

    def test_records_mirror_to_stdlib_logging(self, records, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.test"):
            get_logger("repro.test").warning("unit.mirror", "mirrored text")
        assert any(
            "unit.mirror: mirrored text" in r.getMessage()
            for r in caplog.records
        )

    def test_get_logger_is_process_wide(self):
        assert get_logger("repro.same") is get_logger("repro.same")


class TestWarnOnce:
    def test_exactly_one_record_per_key(self, records):
        log = get_logger("repro.test")
        assert log.warn_once("k1", "unit.once", "first sighting") is True
        assert log.warn_once("k1", "unit.once", "first sighting") is False
        assert log.warn_once("k1", "unit.once", "first sighting") is False
        emitted = [r for r in records if r["event"] == "unit.once"]
        assert len(emitted) == 1
        assert emitted[0]["msg"].endswith("(warning once)")
        assert emitted[0]["fields"]["warn_once_key"] == "k1"

    def test_distinct_keys_emit_separately(self, records):
        log = get_logger("repro.test")
        log.warn_once("ka", "unit.once", "a")
        log.warn_once("kb", "unit.once", "b")
        assert len([r for r in records if r["event"] == "unit.once"]) == 2

    def test_repeats_are_counted(self, records):
        log = get_logger("repro.test")
        for _ in range(5):
            log.warn_once("counted", "unit.once", "again")
        assert hub.warned_keys()["counted"] == 5


class TestRateLimit:
    def test_flood_is_capped_and_announced(self):
        local = LogHub()
        local.mirror_stdlib = False
        local.rate_burst = 10
        local.rate_interval_s = 0.05
        seen = []
        local.add_sink(seen.append)
        for i in range(100):
            local.emit("repro.hot", "info", "hot.event", f"n{i}", {})
        assert len(seen) == 10  # budget enforced within the window
        import time
        time.sleep(0.06)
        local.emit("repro.hot", "info", "hot.event", "after window", {})
        suppressed = [r for r in seen if r["event"] == "log.suppressed"]
        assert len(suppressed) == 1
        assert suppressed[0]["fields"]["dropped"] == 90
        assert suppressed[0]["fields"]["suppressed_event"] == "hot.event"
        # The post-window record itself still flows.
        assert seen[-1]["msg"] == "after window"

    def test_exempt_events_are_never_limited(self):
        local = LogHub()
        local.mirror_stdlib = False
        local.rate_burst = 5
        local.rate_exempt.add("access.event")
        seen = []
        local.add_sink(seen.append)
        for i in range(50):
            local.emit("repro.acc", "info", "access.event", f"n{i}", {})
        assert len(seen) == 50  # complete by contract

    def test_limit_is_per_logger_event_key(self):
        local = LogHub()
        local.mirror_stdlib = False
        local.rate_burst = 2
        seen = []
        local.add_sink(seen.append)
        for _ in range(5):
            local.emit("repro.a", "info", "ev", "a", {})
            local.emit("repro.b", "info", "ev", "b", {})
        assert len([r for r in seen if r["logger"] == "repro.a"]) == 2
        assert len([r for r in seen if r["logger"] == "repro.b"]) == 2


class TestSinkQuarantine:
    def test_broken_sink_disabled_after_one_failure(self, records):
        calls = []

        def broken(record):
            calls.append(record)
            raise RuntimeError("sink boom")

        hub.add_sink(broken)
        try:
            log = get_logger("repro.test")
            log.info("unit.q", "one")
            log.info("unit.q", "two")
        finally:
            hub.remove_sink(broken)
        assert len(calls) == 1  # never called again after the raise
        # The healthy sink saw both records.
        assert [r["msg"] for r in records if r["event"] == "unit.q"] == [
            "one", "two",
        ]


class TestJsonlRoundTrip:
    def test_header_and_records(self, tmp_path):
        path = str(tmp_path / "run.log.jsonl")
        sink = LogJsonlSink(path, meta={"source": "unit"})
        hub.add_sink(sink)
        try:
            log = get_logger("repro.test")
            log.info("unit.rt", "hello", n=1)
            log.warning("unit.rt2", "watch out")
        finally:
            hub.remove_sink(sink)
            sink.close()
        with open(path, "r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header["format"] == LOG_SCHEMA
        meta, log_records = read_log(path)
        assert meta == {"source": "unit"}
        assert [r["event"] for r in log_records] == ["unit.rt", "unit.rt2"]
        assert log_records[0]["fields"] == {"n": 1}

    def test_file_is_tailable_before_close(self, tmp_path):
        path = str(tmp_path / "live.log.jsonl")
        sink = LogJsonlSink(path)
        hub.add_sink(sink)
        try:
            get_logger("repro.test").info("unit.live", "flushed")
            # No close: the record must already be on disk.
            meta, log_records = read_log(path)
        finally:
            hub.remove_sink(sink)
            sink.close()
        assert [r["event"] for r in log_records] == ["unit.live"]

    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = str(tmp_path / "cut.log.jsonl")
        sink = LogJsonlSink(path)
        hub.add_sink(sink)
        try:
            get_logger("repro.test").info("unit.cut", "whole")
        finally:
            hub.remove_sink(sink)
            sink.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"ts": 1, "level": "info", "trunc')
        _, log_records = read_log(path)
        assert [r["event"] for r in log_records] == ["unit.cut"]

    def test_foreign_file_raises_value_error(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            read_log(str(path))


class TestSummarize:
    def test_counts_levels_events_and_warn_once(self):
        rows = [
            {"level": "info", "event": "a"},
            {"level": "info", "event": "a"},
            {"level": "warning", "event": "b",
             "fields": {"warn_once_key": "kb"}},
            {"level": "error", "event": "c"},
        ]
        summary = summarize_log(rows)
        assert summary["levels"] == {"info": 2, "warning": 1, "error": 1}
        assert summary["events"] == {"a": 2, "b": 1, "c": 1}
        assert summary["warn_once"] == {"kb": 1}


class TestPackageSurface:
    def test_reexported_from_obs(self):
        assert obs.log_hub is hub
        assert obs.LOG_SCHEMA == LOG_SCHEMA
        assert obs.get_logger is get_logger
