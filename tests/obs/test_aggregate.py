"""Cross-worker aggregation: per-seed deltas, merge, sweep determinism."""

import pytest

from repro import obs
from repro.experiments.runner import Scenario, run_batch
from repro.obs.aggregate import (
    Aggregator,
    capture_before,
    seed_payload,
    snapshot_delta,
)
from repro.obs.histogram import Histogram
from repro.resilience import ChaosPolicy, RunPolicy, SeedTimeoutError

SMALL = Scenario(
    workload="asymmetric",
    n=6,
    f=1,
    scheduler="round-robin",
    crashes="after-move",
    movement="rigid",
    max_rounds=2_000,
)


class TestSnapshotDelta:
    def test_counters_subtract_and_drop_zeroes(self):
        before = {"counters": {"a": 3, "b": 7}}
        after = {"counters": {"a": 5, "b": 7, "c": 2}}
        delta = snapshot_delta(after, before)
        assert delta["counters"] == {"a": 2, "c": 2}

    def test_stats_subtract_count_and_total(self):
        before = {"stats": {"x": {"count": 2, "total": 4.0,
                                  "min": 1.0, "max": 3.0}}}
        before["stats"]["idle"] = {"count": 2, "total": 4.0,
                                   "min": 1.0, "max": 3.0}
        after = {"stats": {"x": {"count": 5, "total": 13.0,
                                 "min": 0.5, "max": 6.0},
                           "idle": {"count": 2, "total": 4.0,
                                    "min": 1.0, "max": 3.0}}}
        delta = snapshot_delta(after, before)
        assert delta["stats"] == {
            # count/total are the window's; min/max carried cumulative.
            "x": {"count": 3, "total": 9.0, "min": 0.5, "max": 6.0}
        }

    def test_kernels_subtract_per_backend(self):
        before = {"kernels": [
            {"kernel": "k", "backend": "numpy", "calls": 10, "total_s": 1.0},
        ]}
        after = {"kernels": [
            {"kernel": "k", "backend": "numpy", "calls": 14, "total_s": 1.5},
            {"kernel": "k", "backend": "python", "calls": 2, "total_s": 0.2},
        ]}
        delta = snapshot_delta(after, before)
        assert delta["kernels"] == [
            {"kernel": "k", "backend": "numpy", "calls": 4, "total_s": 0.5},
            {"kernel": "k", "backend": "python", "calls": 2, "total_s": 0.2},
        ]

    def test_hists_delta_by_bucket(self):
        hist = Histogram()
        hist.add(1e-3)
        before = {"hists": {"lat": hist.to_dict()}}
        hist.add(1e-2)
        after = {"hists": {"lat": hist.to_dict(),
                           "quiet": Histogram().to_dict()}}
        delta = snapshot_delta(after, before)
        assert set(delta["hists"]) == {"lat"}
        window = Histogram.from_dict(delta["hists"]["lat"])
        assert window.count == 1
        assert window.total == pytest.approx(1e-2)


class TestSeedPayload:
    def test_delta_without_resetting_registry(self):
        obs.enable()
        obs.metrics.inc("warmup", 5)
        before = capture_before()
        obs.metrics.inc("warmup", 2)
        obs.metrics.inc("fresh")
        payload = seed_payload(before)
        assert payload["metrics"]["counters"] == {"warmup": 2, "fresh": 1}
        # The cumulative registry survives the capture untouched — the
        # worker's own `--obs` view keeps accumulating.
        assert obs.metrics.snapshot()["counters"]["warmup"] == 7

    def test_span_tail_sliced_to_the_seed(self):
        obs.enable()
        obs.tracer.end(obs.tracer.begin("earlier", "run"))
        before = capture_before()
        obs.tracer.end(obs.tracer.begin("mine", "run"))
        payload = seed_payload(before)
        assert [s["name"] for s in payload["spans"]] == ["mine"]

    def test_no_spans_key_when_tracing_vetoed(self, monkeypatch):
        obs.enable()
        monkeypatch.setattr(obs.tracer, "active", False)
        payload = seed_payload(capture_before())
        assert "spans" not in payload


class _FakeResult:
    def __init__(self, rounds=10, verdict="gathered", obs_payload=None):
        self.rounds = rounds
        self.verdict = verdict
        self.obs = obs_payload


class TestAggregator:
    def test_resumed_seed_counts_without_payload(self):
        agg = Aggregator(total_seeds=2)
        agg.seed_done(0, _FakeResult(rounds=4, obs_payload=None))
        assert (agg.done, agg.resumed, agg.rounds) == (1, 1, 4)
        assert agg.verdicts == {"gathered": 1}

    def test_failures_split_timeouts_from_retries(self):
        agg = Aggregator()
        agg.failure("k#seed0", RuntimeError("boom"), strike=True)
        agg.failure("k#seed1", SeedTimeoutError("slow"), strike=True)
        assert (agg.retries, agg.timeouts) == (2, 1)

    def test_merge_is_order_independent(self):
        payload_a = {"counters": {"rounds.class.W1": 3},
                     "stats": {"s": {"count": 1, "total": 2.0,
                                     "min": 2.0, "max": 2.0}},
                     "kernels": [{"kernel": "k", "backend": "numpy",
                                  "calls": 1, "total_s": 0.5}],
                     "hists": {}}
        payload_b = {"counters": {"rounds.class.W1": 2,
                                  "rounds.class.W3": 1},
                     "stats": {"s": {"count": 2, "total": 10.0,
                                     "min": 4.0, "max": 6.0}},
                     "kernels": [{"kernel": "k", "backend": "numpy",
                                  "calls": 3, "total_s": 1.5}],
                     "hists": {}}
        forward, backward = Aggregator(), Aggregator()
        forward.add_metrics(payload_a)
        forward.add_metrics(payload_b)
        backward.add_metrics(payload_b)
        backward.add_metrics(payload_a)
        assert forward.counters == backward.counters
        assert forward.stats == backward.stats
        assert forward.kernels == backward.kernels
        assert forward.class_rounds() == {"W1": 5, "W3": 1}

    def test_to_dict_document_shape(self):
        agg = Aggregator(total_seeds=3)
        agg.seed_done(0, _FakeResult(obs_payload={
            "pid": 1234,
            "metrics": {"counters": {"rounds.total": 10,
                                     "rounds.class.W1": 10}},
            "spans": [{"id": 1}],
        }))
        doc = agg.to_dict()
        assert doc["schema"] == obs.SWEEP_METRICS_SCHEMA
        assert doc["seeds"] == {"total": 3, "done": 1, "resumed": 0,
                                "retried": 0, "timed_out": 0}
        assert doc["rounds"]["total"] == 10
        assert doc["rounds"]["by_class"] == {"W1": 10}
        assert doc["workers"] == [1234]
        assert doc["span_count"] == 1


class TestSweepAggregation:
    SEEDS = list(range(4))

    def _sweep(self, aggregator, **kwargs):
        return run_batch(
            SMALL,
            self.SEEDS,
            on_seed_result=aggregator.seed_done,
            on_failure=aggregator.failure,
            **kwargs,
        )

    def test_serial_merge_equals_global_registry(self):
        # In one process the registry IS the ground truth: the sum of
        # the per-seed deltas must reproduce it exactly (not roughly).
        obs.enable()
        agg = Aggregator(total_seeds=len(self.SEEDS))
        results = self._sweep(agg)
        snapshot = obs.metrics.snapshot()
        assert agg.counters == snapshot["counters"]
        assert agg.rounds == sum(r.rounds for r in results)
        assert agg.done == len(self.SEEDS)
        for name, stat in agg.stats.items():
            assert stat["count"] == snapshot["stats"][name]["count"]
            assert stat["total"] == pytest.approx(
                snapshot["stats"][name]["total"]
            )

    def test_chaotic_sweep_aggregates_like_clean_one(self):
        # Satellite determinism contract: injected faults + retries must
        # not change what the sweep *measured* — failed attempts raise
        # before the seed computes, so they contribute no metrics.
        obs.enable()
        clean = Aggregator(total_seeds=len(self.SEEDS))
        self._sweep(clean)

        obs.metrics.reset()
        obs.tracer.reset()
        chaotic = Aggregator(total_seeds=len(self.SEEDS))
        self._sweep(
            chaotic,
            chaos=ChaosPolicy.parse("seed=7,error=0.4"),
            policy=RunPolicy(retries=8, backoff=0.0),
        )
        assert chaotic.retries > 0  # the schedule is deterministic
        assert chaotic.class_rounds() == clean.class_rounds()
        assert chaotic.rounds == clean.rounds
        assert chaotic.verdicts == clean.verdicts
        assert chaotic.counters == clean.counters

    def test_four_worker_sweep_merges_all_payloads(self):
        obs.enable()
        agg = Aggregator(total_seeds=8)
        results = run_batch(
            SMALL,
            list(range(8)),
            workers=4,
            on_seed_result=agg.seed_done,
            on_failure=agg.failure,
        )
        assert agg.done == 8
        assert agg.resumed == 0  # every result carried a payload home
        assert agg.rounds == sum(r.rounds for r in results)
        # The merged counters equal the sum of the per-worker deltas by
        # construction; cross-check against the results themselves.
        assert agg.counters["rounds.total"] == agg.rounds
        assert agg.counters["runner.runs"] == 8
        assert sum(agg.class_rounds().values()) == agg.rounds
        assert agg.workers  # real pids reported
        assert agg.span_count > 0
        doc = agg.to_dict()
        assert doc["workers"] == sorted(agg.workers)
