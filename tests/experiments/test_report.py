"""Unit tests for experiment table rendering."""

import math

import pytest

from repro.experiments.report import Table, format_cell


class TestFormatCell:
    def test_none_and_nan(self):
        assert format_cell(None) == "-"
        assert format_cell(math.nan) == "-"

    def test_integral_float_compact(self):
        assert format_cell(3.0) == "3"

    def test_fractional_float_three_decimals(self):
        assert format_cell(3.14159) == "3.142"

    def test_strings_and_ints_pass_through(self):
        assert format_cell("abc") == "abc"
        assert format_cell(42) == "42"


class TestTable:
    def _table(self):
        t = Table("T1", "caption", ["name", "value"])
        t.add_row("alpha", 1)
        t.add_row("beta", 2.5)
        return t

    def test_row_arity_checked(self):
        t = self._table()
        with pytest.raises(ValueError):
            t.add_row("only-one-cell")

    def test_render_contains_everything(self):
        t = self._table()
        t.add_note("a note")
        out = t.render()
        assert "[T1] caption" in out
        assert "alpha" in out and "beta" in out
        assert "2.500" in out
        assert "note: a note" in out

    def test_render_alignment(self):
        out = self._table().render()
        lines = out.splitlines()
        header, sep, row1, row2 = lines[1:5]
        assert len(header) == len(sep) == len(row1) == len(row2)

    def test_csv(self):
        csv = self._table().to_csv()
        assert csv.splitlines()[0] == "name,value"
        assert "alpha,1" in csv

    def test_str_is_render(self):
        t = self._table()
        assert str(t) == t.render()
