"""Unit tests for the experiment runner plumbing."""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.runner import (
    Scenario,
    executor,
    make_crashes,
    make_movement,
    make_scheduler,
    parallel_map,
    run_batch,
    run_scenario,
)


class TestFactories:
    @pytest.mark.parametrize(
        "name",
        ["fsync", "round-robin", "random", "laggard", "half-split", "poisson"],
    )
    def test_schedulers(self, name):
        assert make_scheduler(name) is not make_scheduler(name)  # fresh

    @pytest.mark.parametrize(
        "name",
        [
            "rigid",
            "adversarial-stop",
            "random-stop",
            "collusive-stop",
            "per-robot-speed",
        ],
    )
    def test_movements(self, name):
        assert make_movement(name).name.startswith(name.split("(")[0])

    def test_crashes(self):
        assert make_crashes("none", 5).budget == 0
        assert make_crashes("random", 0).budget == 0  # f=0 forces none
        assert make_crashes("random", 3).budget == 3
        assert make_crashes("after-move", 2).budget == 2
        assert make_crashes("elected", 2).budget == 2
        with pytest.raises(ValueError):
            make_crashes("weird", 1)


class TestScenario:
    def test_label_mentions_key_parameters(self):
        s = Scenario(workload="random", n=8, f=3)
        label = s.label()
        assert "random" in label and "n=8" in label and "f=3" in label

    def test_run_scenario_deterministic(self):
        s = Scenario(workload="asymmetric", n=6, f=2, max_rounds=3000)
        r1 = run_scenario(s, seed=4)
        r2 = run_scenario(s, seed=4)
        assert r1.rounds == r2.rounds
        assert r1.verdict == r2.verdict

    def test_run_batch_length(self):
        s = Scenario(workload="multiple", n=6, max_rounds=3000)
        results = run_batch(s, range(3))
        assert len(results) == 3
        assert all(r.gathered for r in results)


def _square(x):
    return x * x


class TestParallelRunner:
    def test_parallel_map_sequential_fallback(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_parallel_map_ordering(self):
        assert parallel_map(_square, list(range(20)), workers=4) == [
            x * x for x in range(20)
        ]

    def test_executor_none_for_sequential(self):
        with executor(None) as pool:
            assert pool is None
        with executor(1) as pool:
            assert pool is None

    def test_run_batch_workers_bit_identical(self):
        """Acceptance: workers=4 equals sequential over an E1-style sweep.

        32 seeds of an E1 cell; the parallel shard must return exactly
        the sequential verdicts, round counts and final positions, in
        the same order.
        """
        scenario = Scenario(
            workload="asymmetric",
            n=6,
            f=2,
            scheduler="random",
            crashes="random",
            movement="random-stop",
            max_rounds=5_000,
        )
        seeds = range(32)
        sequential = run_batch(scenario, seeds)
        parallel = run_batch(scenario, seeds, workers=4)
        assert [r.verdict for r in sequential] == [r.verdict for r in parallel]
        assert [r.rounds for r in sequential] == [r.rounds for r in parallel]
        assert [r.final_positions for r in sequential] == [
            r.final_positions for r in parallel
        ]

    def test_run_batch_shared_pool(self):
        scenario = Scenario(workload="multiple", n=6, max_rounds=3000)
        with executor(2) as pool:
            first = run_batch(scenario, range(2), pool=pool)
            second = run_batch(scenario, range(2), pool=pool)
        assert [r.rounds for r in first] == [r.rounds for r in second]


class TestRegistry:
    def test_all_experiments_registered(self):
        assert sorted(EXPERIMENTS) == [
            "e1", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17",
            "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
        ]

    def test_unknown_experiment_raises(self):
        from repro.experiments import run_experiment

        with pytest.raises(ValueError):
            run_experiment("e99")
