"""Unit tests for workload generators."""

import pytest

from repro.core import ConfigClass, Configuration, classify
from repro.workloads import (
    CLASS_GENERATORS,
    biangular,
    bivalent,
    gathered,
    generate,
    linear_unique_weber,
    linear_weber_interval_config,
    multiple,
    near_bivalent,
    quasi_regular_occupied_center,
    random_points,
    regular_polygon,
    unsafe_ray,
)

EXPECTED_CLASS = {
    "multiple": ConfigClass.MULTIPLE,
    "bivalent": ConfigClass.BIVALENT,
    "linear-unique": ConfigClass.LINEAR_UNIQUE_WEBER,
    "linear-interval": ConfigClass.LINEAR_MANY_WEBER,
    "regular-polygon": ConfigClass.QUASI_REGULAR,
    "biangular": ConfigClass.QUASI_REGULAR,
    "qr-occupied-center": ConfigClass.QUASI_REGULAR,
    "asymmetric": ConfigClass.ASYMMETRIC,
    "unsafe-ray": ConfigClass.MULTIPLE,
}


class TestDispatch:
    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            generate("no-such-kind", 8)

    def test_all_kinds_runnable(self):
        for kind in CLASS_GENERATORS:
            pts = generate(kind, 8, seed=1)
            assert len(pts) == 8, kind

    def test_determinism_in_seed(self):
        for kind in CLASS_GENERATORS:
            assert generate(kind, 8, 3) == generate(kind, 8, 3), kind

    def test_seeds_vary_output(self):
        assert generate("random", 8, 1) != generate("random", 8, 2)


class TestClassTargets:
    @pytest.mark.parametrize("kind,expected", sorted(EXPECTED_CLASS.items()))
    def test_generator_hits_class(self, kind, expected):
        for seed in range(4):
            for n in (6, 8, 12):
                c = Configuration(generate(kind, n, seed))
                assert classify(c) is expected, f"{kind} n={n} seed={seed}"

    def test_near_bivalent_is_never_bivalent(self):
        for seed in range(6):
            c = Configuration(near_bivalent(8, seed))
            assert classify(c) is not ConfigClass.BIVALENT


class TestValidation:
    def test_bivalent_needs_even(self):
        with pytest.raises(ValueError):
            bivalent(7)

    def test_l2w_needs_even_at_least_4(self):
        with pytest.raises(ValueError):
            linear_weber_interval_config(7)
        with pytest.raises(ValueError):
            linear_weber_interval_config(2)

    def test_l1w_rejects_n4(self):
        # No L1W configuration with n = 4 exists (see generator docs).
        with pytest.raises(ValueError):
            linear_unique_weber(4)

    def test_biangular_needs_even_6(self):
        with pytest.raises(ValueError):
            biangular(7)

    def test_unsafe_ray_needs_even_6(self):
        with pytest.raises(ValueError):
            unsafe_ray(7)

    def test_random_needs_positive(self):
        with pytest.raises(ValueError):
            random_points(0)


class TestShapes:
    def test_gathered_single_location(self):
        c = Configuration(gathered(5, 1))
        assert c.is_gathered()

    def test_bivalent_halves(self):
        c = Configuration(bivalent(10, 2))
        assert len(c.support) == 2
        assert all(c.mult(p) == 5 for p in c.support)

    def test_multiple_has_strict_maximum(self):
        c = Configuration(multiple(9, 3))
        tops = c.max_multiplicity_points()
        assert len(tops) == 1
        assert c.max_multiplicity() >= 2

    def test_polygon_with_center_robots(self):
        pts = regular_polygon(8, seed=1, center_robots=2)
        c = Configuration(pts)
        assert c.n == 8
        assert c.max_multiplicity() == 2

    def test_qr_occupied_center_has_center_robot(self):
        from repro.core import quasi_regularity

        pts = quasi_regular_occupied_center(9, 0)
        c = Configuration(pts)
        qr = quasi_regularity(c)
        assert qr.is_quasi_regular
        assert c.mult(qr.center) == 1

    def test_unsafe_ray_layout(self):
        from repro.core import is_safe_point

        c = Configuration(unsafe_ray(10, 5))
        target = c.max_multiplicity_points()[0]
        assert c.mult(target) == 4  # n/2 - 1
        assert not is_safe_point(c, target)
