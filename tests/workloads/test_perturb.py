"""Unit tests for workload perturbations."""

import math

import pytest

from repro.geometry import Point
from repro.workloads import break_symmetry, jitter

from ..conftest import regular_ngon

O = Point(0.0, 0.0)


class TestJitter:
    def test_empty(self):
        assert jitter([], 0.1) == []

    def test_magnitude_bounded(self):
        pts = regular_ngon(6, radius=2.0)
        moved = jitter(pts, magnitude=0.05, seed=3)
        assert all(
            p.distance_to(q) <= 0.05 + 1e-12 for p, q in zip(pts, moved)
        )

    def test_deterministic(self):
        pts = regular_ngon(5)
        assert jitter(pts, 0.1, seed=1) == jitter(pts, 0.1, seed=1)

    def test_zero_magnitude_identity(self):
        pts = regular_ngon(5)
        assert jitter(pts, 0.0, seed=1) == pts


class TestBreakSymmetry:
    def test_moves_exactly_one_point(self):
        pts = regular_ngon(6, radius=2.0)
        moved = break_symmetry(pts, magnitude=0.2, seed=1)
        changed = [1 for p, q in zip(pts, moved) if p != q]
        assert len(changed) == 1

    def test_count_moves_that_many(self):
        pts = regular_ngon(8, radius=2.0)
        moved = break_symmetry(pts, magnitude=0.2, seed=1, count=3)
        changed = [1 for p, q in zip(pts, moved) if p != q]
        assert len(changed) == 3

    def test_offset_has_requested_magnitude(self):
        pts = regular_ngon(6, radius=2.0)
        moved = break_symmetry(pts, magnitude=0.2, seed=2)
        deltas = [p.distance_to(q) for p, q in zip(pts, moved) if p != q]
        assert len(deltas) == 1
        assert math.isclose(deltas[0], 0.2, rel_tol=1e-9)

    def test_tangential_mode_perpendicular_to_ray(self):
        pts = regular_ngon(6, radius=2.0)
        moved = break_symmetry(
            pts, magnitude=0.2, seed=4, tangential_about=O
        )
        (pair,) = [(p, q) for p, q in zip(pts, moved) if p != q]
        p, q = pair
        offset = q - p
        radial = p - O
        assert abs(offset.dot(radial)) < 1e-9  # perpendicular

    def test_tangential_guard(self):
        pts = [Point(0.1, 0.0)]
        with pytest.raises(ValueError):
            break_symmetry(pts, magnitude=0.2, seed=0, tangential_about=O)

    def test_empty(self):
        assert break_symmetry([], 0.1) == []
