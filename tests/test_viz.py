"""Unit tests for the SVG visualization layer."""

import xml.etree.ElementTree as ET

import pytest

from repro.algorithms import WaitFreeGather
from repro.core import Configuration
from repro.geometry import Point
from repro.sim import CrashAtRounds, Simulation
from repro.viz import SvgDocument, render_configuration, render_trace, robot_color
from repro.workloads import generate

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text: str) -> ET.Element:
    return ET.fromstring(svg_text)


class TestSvgDocument:
    def test_valid_xml(self):
        doc = SvgDocument(100, 100, world=(0, 0, 10, 10))
        doc.circle(5, 5, 3)
        doc.line(0, 0, 10, 10)
        doc.polyline([(0, 0), (1, 1), (2, 0)])
        doc.text(5, 5, "hello <world> & co")
        root = parse(doc.to_string())
        assert root.tag == f"{SVG_NS}svg"

    def test_coordinate_mapping_flips_y(self):
        doc = SvgDocument(100, 100, world=(0, 0, 10, 10), margin=0.0)
        px_low = doc.px(0, 0)
        px_high = doc.px(0, 10)
        assert px_low[1] > px_high[1]  # higher world y = smaller pixel y

    def test_mapping_is_uniform_scale(self):
        doc = SvgDocument(100, 100, world=(0, 0, 10, 5), margin=0.0)
        ax, ay = doc.px(0, 0)
        bx, by = doc.px(10, 0)
        cx, cy = doc.px(0, 5)
        assert abs((bx - ax) / 10 - (ay - cy) / 5) < 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            SvgDocument(0, 100)

    def test_save(self, tmp_path):
        doc = SvgDocument(50, 50)
        path = tmp_path / "x.svg"
        doc.save(str(path))
        assert path.read_text().startswith("<svg")


class TestRenderConfiguration:
    def test_contains_circle_per_support_point(self):
        config = Configuration(generate("asymmetric", 7, 1))
        root = parse(render_configuration(config))
        circles = root.findall(f".//{SVG_NS}circle")
        # at least one marker circle per support point + SEC ring.
        assert len(circles) >= len(config.support) + 1

    def test_multiplicity_labels(self):
        config = Configuration([Point(0, 0)] * 3 + [Point(3, 1), Point(1, 4)])
        svg = render_configuration(config)
        assert "x3" in svg

    def test_caption_included(self):
        config = Configuration(generate("multiple", 6, 0))
        svg = render_configuration(config, caption="my caption")
        assert "my caption" in svg

    def test_weber_marker_for_qr(self):
        config = Configuration(generate("regular-polygon", 6, 1))
        svg = render_configuration(config)
        assert "Weber point" in svg


class TestRenderTrace:
    def _run(self):
        from repro.sim import RoundRobin

        sim = Simulation(
            WaitFreeGather(),
            generate("random", 6, 2),
            scheduler=RoundRobin(),
            crash_adversary=CrashAtRounds({1: 0}),
            seed=4,
            record_trace=True,
        )
        result = sim.run()
        assert result.crashed_ids == (1,)
        return result

    def test_renders_valid_svg_with_paths(self):
        result = self._run()
        root = parse(render_trace(result.trace, result))
        polylines = root.findall(f".//{SVG_NS}polyline")
        assert len(polylines) == 6  # one per robot

    def test_crash_marker_present(self):
        result = self._run()
        svg = render_trace(result.trace, result)
        # The crash X marker contributes bare <line> elements in red.
        assert "#cc0000" in svg

    def test_empty_trace_rejected(self):
        from repro.sim import Trace

        with pytest.raises(ValueError):
            render_trace(Trace())

    def test_caption_has_verdict(self):
        result = self._run()
        svg = render_trace(result.trace, result)
        assert "verdict=gathered" in svg


class TestPalette:
    def test_stable_and_cycling(self):
        assert robot_color(0) == robot_color(0)
        assert robot_color(0) == robot_color(8)  # palette of 8 cycles
        assert robot_color(0) != robot_color(1)
