"""Unit tests for the statistics helpers."""

import math

from repro.analysis import mean, median, stddev, wilson_interval


class TestDescriptive:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert math.isnan(mean([]))

    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5
        assert math.isnan(median([]))

    def test_stddev(self):
        assert math.isclose(stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]),
                            2.138089935299395)
        assert math.isnan(stddev([1.0]))


class TestWilson:
    def test_degenerate_trials(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(15, 30)
        assert lo < 0.5 < hi

    def test_all_successes_interval_below_one_is_open(self):
        lo, hi = wilson_interval(30, 30)
        assert hi == 1.0
        assert 0.8 < lo < 1.0  # does not collapse to [1, 1]

    def test_zero_successes(self):
        lo, hi = wilson_interval(0, 30)
        assert lo == 0.0
        assert 0.0 < hi < 0.2

    def test_monotone_in_trials(self):
        _, hi_small = wilson_interval(5, 10)
        _, hi_large = wilson_interval(50, 100)
        assert hi_large < hi_small  # more data, tighter interval
