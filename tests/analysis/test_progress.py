"""Unit tests for the progress tracker."""

import pytest

from repro.algorithms import WaitFreeGather
from repro.analysis import ProgressTracker
from repro.core import ConfigClass
from repro.sim import RandomCrashes, RandomSubset, Simulation
from repro.workloads import generate


def _tracked_run(workload="asymmetric", seed=1, n=8):
    tracker = ProgressTracker()
    sim = Simulation(
        WaitFreeGather(),
        generate(workload, n, seed),
        scheduler=RandomSubset(0.5),
        crash_adversary=RandomCrashes(f=n // 2, rate=0.2),
        seed=seed,
        max_rounds=10_000,
    )
    sim.add_observer(tracker)
    result = sim.run()
    return tracker, result


class TestTracking:
    def test_one_sample_per_round(self):
        tracker, result = _tracked_run()
        assert result.gathered
        assert len(tracker.samples) == result.rounds

    def test_samples_carry_class_and_counts(self):
        tracker, _ = _tracked_run()
        first = tracker.samples[0]
        assert first.config_class is ConfigClass.ASYMMETRIC
        assert first.max_multiplicity == 1
        assert first.distinct_locations == 8
        assert first.spread > 0

    def test_multiplicity_monotone_within_m(self):
        tracker, _ = _tracked_run()
        assert tracker.max_multiplicity_monotone()

    def test_final_sample_shows_consolidation(self):
        tracker, result = _tracked_run()
        # The tracker samples the configuration *before* each round, so
        # the last sample precedes the final merge (which may absorb
        # many robots at once under FSYNC-like activations).  The
        # robust claims: multiplicity grew, locations shrank.
        first, last = tracker.samples[0], tracker.samples[-1]
        assert last.max_multiplicity > first.max_multiplicity
        assert last.distinct_locations < first.distinct_locations


class TestDownsample:
    def test_short_series_returned_whole(self):
        tracker, _ = _tracked_run()
        k = len(tracker.samples) + 5
        assert tracker.downsample(k) == tracker.samples

    def test_budget_respected_and_endpoints_kept(self):
        tracker, _ = _tracked_run(workload="linear-interval", seed=0)
        picked = tracker.downsample(5)
        assert len(picked) <= 5
        assert picked[0] == tracker.samples[0]
        assert picked[-1] == tracker.samples[-1]

    def test_invalid_budget(self):
        tracker, _ = _tracked_run()
        with pytest.raises(ValueError):
            tracker.downsample(0)
