"""Unit tests for the executable proof obligations."""

import pytest

from repro.algorithms import WaitFreeGather
from repro.analysis import (
    ALLOWED_TRANSITIONS,
    InvariantMonitor,
    InvariantViolation,
    check_class_transition,
    check_wait_freedom,
    elected_target,
    exact_weber_point,
    phi,
    verify_trace,
)
from repro.core import ConfigClass, Configuration
from repro.geometry import Point
from repro.sim import RandomCrashes, RandomSubset, Simulation
from repro.workloads import generate

from ..conftest import regular_ngon

O = Point(0.0, 0.0)


class TestWaitFreedomCheck:
    def test_accepts_wait_free_configs(self):
        for workload in ("asymmetric", "multiple", "linear-unique"):
            check_wait_freedom(Configuration(generate(workload, 8, 1)))

    def test_gathered_config_passes(self):
        check_wait_freedom(Configuration([O] * 4))


class TestTransitionTable:
    def test_m_is_closed(self):
        assert ALLOWED_TRANSITIONS[ConfigClass.MULTIPLE] == {
            ConfigClass.MULTIPLE
        }

    def test_b_unreachable_from_everywhere(self):
        for source, targets in ALLOWED_TRANSITIONS.items():
            if source is ConfigClass.BIVALENT:
                continue
            assert ConfigClass.BIVALENT not in targets, source

    def test_legal_transition_accepted(self):
        check_class_transition(
            ConfigClass.QUASI_REGULAR, ConfigClass.MULTIPLE
        )

    def test_illegal_transition_raises(self):
        with pytest.raises(InvariantViolation):
            check_class_transition(
                ConfigClass.MULTIPLE, ConfigClass.ASYMMETRIC
            )


class TestExactWeberPoint:
    def test_qr_center(self):
        c = Configuration(regular_ngon(5, radius=2.0))
        wp = exact_weber_point(c)
        assert wp is not None and wp.close_to(O)

    def test_l1w_median(self):
        c = Configuration([Point(t, 0) for t in (0.0, 1.0, 5.0)])
        wp = exact_weber_point(c)
        assert wp is not None and wp.close_to(Point(1, 0))

    def test_none_for_other_classes(self):
        assert exact_weber_point(Configuration(generate("asymmetric", 7, 1))) is None
        assert exact_weber_point(Configuration(generate("multiple", 7, 1))) is None


class TestPhi:
    def test_phi_of_multiplicity_config(self):
        c = Configuration([O] * 3 + [Point(1, 0), Point(2, 0)])
        mult, neg_sum = phi(c)
        assert mult == 3
        assert neg_sum == -3.0  # 3 zeros + 1 + 2

    def test_phi_orders_progress(self):
        before = Configuration([O, Point(1, 0), Point(0, 2)])
        after = Configuration([O, O, Point(0, 2)])
        assert phi(after) > phi(before)


class TestMonitorEndToEnd:
    def test_monitor_clean_on_wait_free_gather(self):
        monitor = InvariantMonitor()
        sim = Simulation(
            WaitFreeGather(),
            generate("random", 8, 3),
            scheduler=RandomSubset(0.5),
            crash_adversary=RandomCrashes(f=7, rate=0.3),
            seed=9,
            max_rounds=5000,
        )
        sim.add_observer(monitor)
        result = sim.run()
        assert result.gathered
        assert monitor.rounds_checked == result.rounds

    def test_monitor_catches_violations(self):
        # A fake record with an M -> A transition must raise.
        from repro.sim.trace import RoundRecord

        before = Configuration(generate("multiple", 6, 1))
        after = Configuration(generate("asymmetric", 6, 1))
        record = RoundRecord(
            round_index=0,
            config_before=before,
            config_class=ConfigClass.MULTIPLE,
            active=(0,),
            crashed_now=(),
            destinations={},
            config_after=after,
            moved=(0,),
        )
        monitor = InvariantMonitor(check_waitfree=False)
        with pytest.raises(InvariantViolation):
            monitor(record)


class TestOfflineVerification:
    def _trace(self, algorithm="wait-free-gather", seed=3):
        from repro.experiments.runner import Scenario, run_scenario

        scenario = Scenario(
            workload="asymmetric",
            n=7,
            algorithm=algorithm,
            scheduler="random",
            crashes="random",
            f=2,
            movement="adversarial-stop",
            max_rounds=2_000,
        )
        return run_scenario(scenario, seed, record_trace=True).trace

    def test_verify_trace_clean_on_wait_free_gather(self):
        trace = self._trace()
        monitor = verify_trace(trace)
        assert monitor.rounds_checked == len(trace)

    def test_verify_trace_catches_baseline_violations(self):
        # Baselines break the proof obligations under crashes; the
        # offline pass must notice exactly like the live observer does.
        with pytest.raises(InvariantViolation):
            verify_trace(self._trace(algorithm="centroid", seed=1))

    def test_verify_trace_matches_live_monitor(self):
        trace = self._trace()
        offline = verify_trace(trace)
        live = InvariantMonitor()
        for record in trace:
            live(record)
        assert live.rounds_checked == offline.rounds_checked

    def test_elected_target_recovered_from_destinations(self):
        from repro.core import is_safe_point

        trace = self._trace()
        engaged = 0
        for record in trace:
            if record.config_class is not ConfigClass.ASYMMETRIC:
                continue
            target = elected_target(record)
            if target is None:
                continue
            engaged += 1
            # WAIT-FREE-GATHER elects a *safe occupied* point in A.
            assert record.config_before.locate(target) is not None
            assert is_safe_point(record.config_before, target)
        assert engaged > 0, "safe-point obligation never engaged"

    def test_elected_target_none_when_movers_disagree(self):
        from repro.sim.trace import RoundRecord

        before = Configuration([O, Point(4.0, 0.0), Point(0.0, 5.0)])
        record = RoundRecord(
            round_index=0,
            config_before=before,
            config_class=ConfigClass.ASYMMETRIC,
            active=(0, 1, 2),
            crashed_now=(),
            destinations={
                0: Point(1.0, 0.0),
                1: Point(2.0, 0.0),
                2: Point(0.0, 5.0),
            },
            config_after=before,
            moved=(),
        )
        assert elected_target(record) is None
