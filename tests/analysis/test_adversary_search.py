"""Unit tests for the greedy bivalent hunt."""

import pytest

from repro.algorithms import NaiveLeaderGather, WaitFreeGather
from repro.analysis import BivalentHunt, bivalence_score
from repro.core import ConfigClass, Configuration, classify
from repro.geometry import Point
from repro.workloads import generate


class TestScore:
    def test_zero_iff_bivalent(self):
        biv = Configuration([Point(0, 0)] * 3 + [Point(5, 5)] * 3)
        assert bivalence_score(biv) == 0

    def test_gathered_scores_positive(self):
        # A single stack is NOT bivalent: the second cluster is missing.
        gathered = Configuration([Point(0, 0)] * 6)
        assert bivalence_score(gathered) > 0

    def test_imbalance_counted(self):
        lop = Configuration([Point(0, 0)] * 4 + [Point(5, 5)] * 2)
        assert bivalence_score(lop) == 2

    def test_extra_locations_counted(self):
        three = Configuration(
            [Point(0, 0)] * 2 + [Point(5, 5)] * 2 + [Point(1, 9)]
        )
        # one stray robot (2) + balanced tops (0) + one extra location (1)
        assert bivalence_score(three) == 3

    def test_score_decreases_towards_b(self):
        far = Configuration(
            [Point(0, 0), Point(1, 1), Point(2, 2), Point(3, 3)]
        )
        near = Configuration(
            [Point(0, 0), Point(0, 0), Point(3, 3), Point(1, 1)]
        )
        assert bivalence_score(near) < bivalence_score(far)


class TestHunt:
    def test_validation(self):
        with pytest.raises(ValueError):
            BivalentHunt(WaitFreeGather(), [])
        with pytest.raises(ValueError):
            BivalentHunt(WaitFreeGather(), [Point(0, 0)], delta=0.0)

    def test_deterministic_in_seed(self):
        pts = generate("unsafe-ray", 8, 1)
        r1 = BivalentHunt(NaiveLeaderGather(), pts, seed=3).run(20)
        r2 = BivalentHunt(NaiveLeaderGather(), pts, seed=3).run(20)
        assert r1.score_trace == r2.score_trace

    def test_finds_trap_against_naive_leader(self):
        pts = generate("unsafe-ray", 8, 0)
        result = BivalentHunt(NaiveLeaderGather(), pts, seed=0).run(30)
        assert result.reached_bivalent
        assert result.best_score == 0
        assert result.final_class is ConfigClass.BIVALENT

    def test_cannot_trap_wait_free_gather(self):
        for seed in range(3):
            pts = generate("unsafe-ray", 8, seed)
            result = BivalentHunt(WaitFreeGather(), pts, seed=seed).run(25)
            assert not result.reached_bivalent, f"seed {seed}"
            assert result.best_score > 0

    def test_score_trace_recorded(self):
        pts = generate("random", 6, 2)
        result = BivalentHunt(WaitFreeGather(), pts, seed=1).run(10)
        assert len(result.score_trace) >= 2
        assert result.best_score == min(result.score_trace)

    def test_moves_respect_delta(self):
        # Every adversarial stop must advance the robot by >= delta (or
        # complete the move); verify on one recorded step.
        pts = generate("unsafe-ray", 8, 1)
        hunt = BivalentHunt(NaiveLeaderGather(), pts, delta=0.3, seed=2)
        before = list(hunt.points)
        assert hunt.step()
        for old, new in zip(before, hunt.points):
            moved = old.distance_to(new)
            assert moved == 0.0 or moved >= 0.3 - 1e-9
