"""ResilientExecutor: recovery guarantees proved under injected chaos.

Every test that injects faults asserts the recovered results are
*bit-identical* to a clean sequential run — the determinism-under-retry
contract — and the wait-freedom tests assert that one doomed item never
blocks the others from completing and being checkpointed.

Chaos schedules are found by deterministic search (`seed_where`): the
tests scan chaos seeds for one whose SHA-256 schedule fires the wanted
fault pattern, so they encode *behaviour* (kill on first attempt,
recover on retry) rather than magic constants that silently stop
triggering when the hash input format changes.
"""

import pytest

from repro.experiments.runner import Scenario, run_batch
from repro.resilience import (
    ChaosPolicy,
    ChaosInjectedError,
    ResilientExecutor,
    RunPolicy,
    SeedTimeoutError,
    WorkerCrashError,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def square(x):
    return x * x


def sleepy(seconds):
    import time

    time.sleep(seconds)
    return seconds


#: No backoff, generous rebuild budget: fault-heavy tests stay fast.
FAST = RunPolicy(retries=2, backoff=0.0, tick=0.02)


def seed_where(predicate, **chaos_fields):
    """First chaos seed whose schedule satisfies ``predicate(policy)``."""
    for seed in range(10_000):
        policy = ChaosPolicy(seed=seed, **chaos_fields)
        if predicate(policy):
            return policy
    raise AssertionError(
        f"no chaos seed under 10000 satisfies the schedule {chaos_fields!r}"
    )


class TestSerial:
    def test_plain_map(self):
        serial = ResilientExecutor(None, policy=FAST)
        assert serial.map_resilient(square, [1, 2, 3]) == [1, 4, 9]

    def test_on_result_fires_per_item(self):
        seen = []
        serial = ResilientExecutor(None, policy=FAST)
        serial.map_resilient(
            square, [1, 2, 3], on_result=lambda i, v: seen.append((i, v))
        )
        assert seen == [(0, 1), (1, 4), (2, 9)]

    def test_injected_error_is_retried_to_success(self):
        # Fault on attempt 0, clean on attempt 1.
        chaos = seed_where(
            lambda p: p.decide("k0", 0) == "error" and p.decide("k0", 1) is None,
            error=0.5,
            match="k0",
        )
        serial = ResilientExecutor(None, policy=FAST)
        assert serial.map_resilient(
            square, [7], keys=["k0"], chaos=chaos
        ) == [49]

    def test_retry_budget_exhaustion_raises_after_the_rest_complete(self):
        # error=1.0 on one key: every attempt fails, budget exhausts.
        chaos = ChaosPolicy(error=1.0, match="k1")
        done = []
        serial = ResilientExecutor(None, policy=FAST)
        with pytest.raises(WorkerCrashError) as info:
            serial.map_resilient(
                square,
                [1, 2, 3],
                keys=["k0", "k1", "k2"],
                chaos=chaos,
                on_result=lambda i, v: done.append((i, v)),
            )
        # Wait-freedom: the two healthy items completed (and were
        # checkpointed) before the failure surfaced; the error names
        # only the doomed key.
        assert (0, 1) in done and (2, 9) in done
        assert "k1" in str(info.value) and "k0" not in str(info.value)
        assert info.value.failures is not None
        assert set(info.value.failures) == {"k1"}
        assert isinstance(info.value.failures["k1"], ChaosInjectedError)

    def test_chaos_kill_never_kills_the_orchestrator(self):
        # In serial mode a scheduled kill must convert to an exception,
        # strike the budget, and eventually fail the item — not os._exit
        # the test process.
        chaos = ChaosPolicy(kill=1.0, match="k0")
        serial = ResilientExecutor(None, policy=FAST)
        with pytest.raises(WorkerCrashError, match="k0"):
            serial.map_resilient(square, [1], keys=["k0"], chaos=chaos)


class TestPooled:
    def test_results_in_input_order(self):
        with ResilientExecutor(2, policy=FAST) as pool:
            assert pool.map_resilient(square, list(range(8))) == [
                x * x for x in range(8)
            ]

    def test_worker_kill_recovers_bit_identically(self):
        # Kill the worker on the first attempt of one item; the rebuilt
        # pool re-dispatches and the final results match sequential.
        chaos = seed_where(
            lambda p: p.decide("k2", 0) == "kill" and p.decide("k2", 1) is None,
            kill=0.5,
            match="k2",
        )
        items = list(range(5))
        keys = [f"k{i}" for i in items]
        with ResilientExecutor(2, policy=FAST) as pool:
            results = pool.map_resilient(square, items, keys=keys, chaos=chaos)
            assert results == [square(x) for x in items]
            assert pool.rebuilds >= 1

    def test_unattributable_kills_do_not_burn_retry_budgets(self):
        # retries=0: one strike kills an item.  A worker crash marks
        # every in-flight future broken, but innocent items must keep
        # their budget — only rebuilds are spent.
        chaos = seed_where(
            lambda p: p.decide("k0", 0) == "kill" and p.decide("k0", 1) is None,
            kill=0.5,
            match="k0",
        )
        items = list(range(6))
        keys = [f"k{i}" for i in items]
        policy = RunPolicy(retries=0, backoff=0.0, tick=0.02)
        with ResilientExecutor(2, policy=policy) as pool:
            results = pool.map_resilient(square, items, keys=keys, chaos=chaos)
        assert results == [square(x) for x in items]

    def test_runaway_breakage_degrades_to_serial(self):
        # kill=1.0: every pooled attempt dies, so the pool can never
        # make progress on this item; after max_pool_rebuilds the
        # executor must degrade to serial, where the kill converts to an
        # exception and the attempt counter keeps the schedule moving.
        chaos = seed_where(
            lambda p: p.decide("k0", 0) == "kill"
            # Clean somewhere within the serial retry budget.
            and any(p.decide("k0", a) is None for a in range(1, 3)),
            kill=0.5,
            match="k0",
        )
        policy = RunPolicy(retries=2, backoff=0.0, max_pool_rebuilds=0, tick=0.02)
        with ResilientExecutor(2, policy=policy) as pool:
            results = pool.map_resilient(
                square, [3, 4], keys=["k0", "k1"], chaos=chaos
            )
            assert results == [9, 16]
            assert pool.rebuilds == 1

    def test_hung_item_times_out_and_fails_as_timeout(self):
        # One item sleeps far past the deadline; it must be charged a
        # SeedTimeoutError (a TimeoutError subclass) while the healthy
        # items complete and are checkpointed.
        done = []
        policy = RunPolicy(
            timeout=0.4, retries=0, backoff=0.0, max_pool_rebuilds=2, tick=0.02
        )
        with ResilientExecutor(2, policy=policy) as pool:
            with pytest.raises(SeedTimeoutError) as info:
                pool.map_resilient(
                    sleepy,
                    [30.0, 0.0, 0.0],
                    keys=["hang", "ok1", "ok2"],
                    on_result=lambda i, v: done.append(i),
                )
        assert isinstance(info.value, TimeoutError)
        assert "hang" in str(info.value)
        assert set(done) == {1, 2}

    def test_delay_past_timeout_then_clean_retry_succeeds(self):
        # Attempt 0 is chaos-delayed past the deadline (times out, the
        # hung worker is terminated); attempt 1 is clean and must return
        # the exact value.
        chaos = seed_where(
            lambda p: p.decide("k0", 0) == "delay" and p.decide("k0", 1) is None,
            delay=0.5,
            delay_s=30.0,
            match="k0",
        )
        policy = RunPolicy(
            timeout=0.4, retries=2, backoff=0.0, max_pool_rebuilds=3, tick=0.02
        )
        with ResilientExecutor(2, policy=policy) as pool:
            results = pool.map_resilient(
                square, [6, 7], keys=["k0", "k1"], chaos=chaos
            )
        assert results == [36, 49]


class TestRunBatchUnderChaos:
    SCENARIO = Scenario(
        workload="asymmetric",
        n=6,
        f=1,
        scheduler="round-robin",
        crashes="after-move",
        movement="rigid",
        max_rounds=2_000,
    )

    def assert_batches_equal(self, a, b):
        assert len(a) == len(b)
        for left, right in zip(a, b):
            assert left.verdict == right.verdict
            assert left.rounds == right.rounds
            assert left.final_positions == right.final_positions
            assert left.total_distance == right.total_distance
            assert left.classes_seen == right.classes_seen

    def test_chaotic_parallel_sweep_matches_sequential(self, tmp_path):
        seeds = list(range(6))
        baseline = run_batch(self.SCENARIO, seeds, chaos=ChaosPolicy())
        chaos = ChaosPolicy(seed=3, kill=0.3, error=0.1)
        journal_path = str(tmp_path / "sweep.jsonl")
        chaotic = run_batch(
            self.SCENARIO,
            seeds,
            workers=2,
            policy=RunPolicy(retries=6, backoff=0.0, tick=0.02),
            chaos=chaos,
            journal_path=journal_path,
        )
        self.assert_batches_equal(baseline, chaotic)
        # Every seed was checkpointed, and the journaled results resume
        # bit-identically.
        from repro.resilience import SweepJournal

        completed = SweepJournal.peek(journal_path, self.SCENARIO.to_dict())
        assert sorted(completed) == seeds
        self.assert_batches_equal(
            baseline, [completed[seed] for seed in seeds]
        )

    def test_resume_skips_completed_seeds(self, tmp_path, monkeypatch):
        seeds = list(range(4))
        journal_path = str(tmp_path / "sweep.jsonl")
        run_batch(self.SCENARIO, seeds[:2], journal_path=journal_path)

        # Resuming over the full range must only execute the two
        # missing seeds.
        import repro.experiments.runner as runner_module

        executed = []
        original = runner_module.run_scenario

        def counting(scenario, seed, **kwargs):
            executed.append(seed)
            return original(scenario, seed, **kwargs)

        monkeypatch.setattr(runner_module, "run_scenario", counting)
        results = run_batch(
            self.SCENARIO, seeds, journal_path=journal_path, resume=True
        )
        assert executed == [2, 3]
        self.assert_batches_equal(
            run_batch(self.SCENARIO, seeds, chaos=ChaosPolicy()), results
        )
