"""SweepJournal: crash-safe checkpointing and resume semantics."""

import json
import os

import pytest

from repro.experiments.runner import Scenario, run_scenario
from repro.resilience import (
    JOURNAL_SCHEMA,
    SweepJournal,
    TraceFormatError,
    result_from_dict,
    result_to_dict,
)

SCENARIO = Scenario(
    workload="asymmetric",
    n=6,
    f=1,
    scheduler="round-robin",
    crashes="after-move",
    movement="rigid",
    max_rounds=2_000,
)


def results_for(seeds):
    return {seed: run_scenario(SCENARIO, seed) for seed in seeds}


def assert_results_equal(a, b):
    """Bitwise equality of two results (floats compared exactly)."""
    assert a.verdict == b.verdict
    assert a.rounds == b.rounds
    assert a.final_positions == b.final_positions
    assert a.live_ids == b.live_ids
    assert a.crashed_ids == b.crashed_ids
    assert a.gathering_point == b.gathering_point
    assert a.total_distance == b.total_distance
    assert a.initial_class == b.initial_class
    assert a.classes_seen == b.classes_seen


class TestResultSerialization:
    def test_round_trip_is_bit_identical(self):
        for seed, result in results_for(range(4)).items():
            # Through an actual JSON text round trip: repr-serialized
            # floats must come back as the same float64.
            data = json.loads(json.dumps(result_to_dict(result)))
            assert_results_equal(result, result_from_dict(data))

    def test_malformed_dict_raises_trace_format_error(self):
        with pytest.raises(TraceFormatError, match="malformed result"):
            result_from_dict({"verdict": "gathered"}, source="j:2")


class TestJournalLifecycle:
    def test_header_then_entries(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        results = results_for(range(3))
        with SweepJournal.open(path, SCENARIO.to_dict()) as journal:
            for seed, result in results.items():
                journal.append(seed, result)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == JOURNAL_SCHEMA
        assert Scenario.from_dict(header["scenario"]) == SCENARIO
        assert [json.loads(line)["seed"] for line in lines[1:]] == [0, 1, 2]

    def test_resume_returns_bit_identical_results(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        results = results_for(range(3))
        with SweepJournal.open(path, SCENARIO.to_dict()) as journal:
            for seed, result in results.items():
                journal.append(seed, result)
        resumed = SweepJournal.open(path, SCENARIO.to_dict(), resume=True)
        completed = resumed.completed()
        resumed.close()
        assert sorted(completed) == [0, 1, 2]
        for seed, result in results.items():
            assert_results_equal(result, completed[seed])

    def test_fresh_open_truncates_existing(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with SweepJournal.open(path, SCENARIO.to_dict()) as journal:
            journal.append(0, run_scenario(SCENARIO, 0))
        with SweepJournal.open(path, SCENARIO.to_dict()) as journal:
            pass
        assert SweepJournal.peek(path) == {}

    def test_resume_nonexistent_starts_fresh(self, tmp_path):
        path = str(tmp_path / "new.jsonl")
        with SweepJournal.open(path, SCENARIO.to_dict(), resume=True) as j:
            assert j.completed() == {}
        assert os.path.exists(path)


class TestCrashTolerance:
    def _journal_with(self, tmp_path, seeds):
        path = str(tmp_path / "sweep.jsonl")
        with SweepJournal.open(path, SCENARIO.to_dict()) as journal:
            for seed in seeds:
                journal.append(seed, run_scenario(SCENARIO, seed))
        return path

    def test_torn_final_line_is_truncated_on_resume(self, tmp_path):
        path = self._journal_with(tmp_path, range(3))
        whole = os.path.getsize(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seed": 3, "result": {"verd')  # SIGKILL here
        journal = SweepJournal.open(path, SCENARIO.to_dict(), resume=True)
        journal.close()
        assert sorted(journal.completed()) == [0, 1, 2]
        # The torn bytes are gone: appends continue from the valid end.
        assert os.path.getsize(path) == whole

    def test_torn_line_with_newline_is_also_dropped(self, tmp_path):
        path = self._journal_with(tmp_path, range(2))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seed": 2, "result"\n')
        journal = SweepJournal.open(path, SCENARIO.to_dict(), resume=True)
        journal.close()
        assert sorted(journal.completed()) == [0, 1]

    def test_interior_corruption_raises(self, tmp_path):
        path = self._journal_with(tmp_path, range(3))
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]  # corrupt a middle entry
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="line 3"):
            SweepJournal.open(path, SCENARIO.to_dict(), resume=True)

    def test_scenario_mismatch_refused(self, tmp_path):
        path = self._journal_with(tmp_path, range(1))
        other = Scenario(workload="random", n=8).to_dict()
        with pytest.raises(TraceFormatError, match="different scenario"):
            SweepJournal.open(path, other, resume=True)

    def test_foreign_header_refused(self, tmp_path):
        path = str(tmp_path / "bogus.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"format": "repro-obs-v1", "meta": null}\n')
        with pytest.raises(TraceFormatError, match=JOURNAL_SCHEMA):
            SweepJournal.open(path, SCENARIO.to_dict(), resume=True)

    def test_empty_file_refused(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        with pytest.raises(TraceFormatError, match="empty or torn"):
            SweepJournal.peek(path)
