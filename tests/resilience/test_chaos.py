"""ChaosPolicy: spec parsing and deterministic fault scheduling."""

import pytest

from repro.resilience import ChaosPolicy, ChaosInjectedError, ReproError


class TestParse:
    def test_full_spec(self):
        policy = ChaosPolicy.parse(
            "seed=7,kill=0.2,error=0.1,delay=0.3,delay_s=0.5,match=seed3"
        )
        assert policy == ChaosPolicy(
            seed=7, kill=0.2, error=0.1, delay=0.3, delay_s=0.5, match="seed3"
        )

    def test_raise_is_an_alias_for_error(self):
        assert ChaosPolicy.parse("raise=0.5").error == 0.5

    def test_whitespace_and_empty_parts_tolerated(self):
        policy = ChaosPolicy.parse(" seed = 3 , kill = 0.1 ,, ")
        assert policy.seed == 3 and policy.kill == 0.1

    def test_unknown_key_rejected(self):
        with pytest.raises(ReproError, match="unknown"):
            ChaosPolicy.parse("frobnicate=1")

    def test_bad_value_rejected(self):
        with pytest.raises(ReproError, match="bad"):
            ChaosPolicy.parse("kill=often")

    def test_missing_equals_rejected(self):
        with pytest.raises(ReproError, match="key=value"):
            ChaosPolicy.parse("kill")

    def test_from_env_unset_is_none(self):
        assert ChaosPolicy.from_env({}) is None
        assert ChaosPolicy.from_env({"REPRO_CHAOS": "  "}) is None

    def test_from_env_parses(self):
        policy = ChaosPolicy.from_env({"REPRO_CHAOS": "seed=1,kill=0.9"})
        assert policy == ChaosPolicy(seed=1, kill=0.9)

    def test_spec_round_trips(self):
        policy = ChaosPolicy.parse("seed=2,kill=0.25,delay=0.5,delay_s=0.01")
        assert ChaosPolicy.parse(policy.to_spec()) == policy


class TestEnabled:
    def test_default_policy_is_disabled(self):
        assert not ChaosPolicy().enabled

    def test_any_probability_enables(self):
        assert ChaosPolicy(kill=0.1).enabled
        assert ChaosPolicy(error=0.1).enabled
        assert ChaosPolicy(delay=0.1).enabled


class TestDecide:
    def test_pure_function_of_seed_key_attempt(self):
        policy = ChaosPolicy(seed=5, kill=0.3, error=0.3, delay=0.3)
        for key in ("a#seed0", "a#seed1", "b#seed0"):
            for attempt in range(4):
                assert policy.decide(key, attempt) == policy.decide(
                    key, attempt
                )

    def test_attempt_rerolls_the_decision(self):
        # The retry loop increments the attempt, which must re-roll the
        # dice: a fault that fires forever on retry would defeat retry.
        policy = ChaosPolicy(seed=0, kill=0.5)
        decisions = {policy.decide("item", attempt) for attempt in range(32)}
        assert decisions == {"kill", None}

    def test_seed_decorrelates_schedules(self):
        keys = [f"k{i}" for i in range(64)]
        a = [ChaosPolicy(seed=1, kill=0.5).decide(k, 0) for k in keys]
        b = [ChaosPolicy(seed=2, kill=0.5).decide(k, 0) for k in keys]
        assert a != b

    def test_match_filters_keys(self):
        policy = ChaosPolicy(seed=0, kill=1.0, match="seed3")
        assert policy.decide("sweep#seed3", 0) == "kill"
        assert policy.decide("sweep#seed4", 0) is None

    def test_fault_order_kill_error_delay(self):
        assert ChaosPolicy(kill=1.0, error=1.0, delay=1.0).decide("x", 0) == "kill"
        assert ChaosPolicy(error=1.0, delay=1.0).decide("x", 0) == "error"
        assert ChaosPolicy(delay=1.0).decide("x", 0) == "delay"

    def test_probabilities_roughly_respected(self):
        policy = ChaosPolicy(seed=9, kill=0.25)
        kills = sum(
            1 for i in range(400) if policy.decide(f"k{i}", 0) == "kill"
        )
        assert 60 <= kills <= 140  # 0.25 * 400 = 100 expected


class TestInject:
    def test_no_fault_is_a_no_op(self):
        ChaosPolicy().inject("key", 0)

    def test_error_raises_chaos_injected(self):
        with pytest.raises(ChaosInjectedError):
            ChaosPolicy(error=1.0).inject("key", 0)

    def test_kill_without_allow_kill_becomes_exception(self):
        # In-parent (serial) execution must never os._exit the
        # orchestrating process; the kill converts to an exception.
        with pytest.raises(ChaosInjectedError, match="kill"):
            ChaosPolicy(kill=1.0).inject("key", 0, allow_kill=False)

    def test_delay_sleeps_then_returns(self):
        ChaosPolicy(delay=1.0, delay_s=0.0).inject("key", 0)
