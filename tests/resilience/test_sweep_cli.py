"""`repro sweep`: journaling, resume, guards, chaos via the environment."""

import json

import pytest

from repro import cli
from repro.experiments.runner import Scenario, run_batch
from repro.resilience import ChaosPolicy, SweepJournal

SCENARIO_ARGS = [
    "--workload", "asymmetric", "--n", "6", "--f", "1",
    "--scheduler", "round-robin", "--crashes", "after-move",
    "--movement", "rigid", "--max-rounds", "2000",
]

SCENARIO = Scenario(
    workload="asymmetric",
    n=6,
    f=1,
    scheduler="round-robin",
    crashes="after-move",
    movement="rigid",
    max_rounds=2_000,
)


def sweep(*extra):
    return cli.main(["sweep", *SCENARIO_ARGS, *extra])


class TestSweepCommand:
    def test_fresh_sweep_journals_every_seed(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        assert sweep("--seeds", "4", "--journal", journal) == 0
        out = capsys.readouterr().out
        assert "4/4 seed(s)" in out
        completed = SweepJournal.peek(journal, SCENARIO.to_dict())
        assert sorted(completed) == [0, 1, 2, 3]

    def test_journal_results_match_run_batch(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        assert sweep("--seeds", "4", "--journal", journal) == 0
        baseline = run_batch(SCENARIO, range(4), chaos=ChaosPolicy())
        completed = SweepJournal.peek(journal)
        for seed, expected in zip(range(4), baseline):
            got = completed[seed]
            assert got.verdict == expected.verdict
            assert got.rounds == expected.rounds
            assert got.final_positions == expected.final_positions
            assert got.total_distance == expected.total_distance

    def test_existing_journal_without_resume_refused(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        assert sweep("--seeds", "2", "--journal", journal) == 0
        capsys.readouterr()
        assert sweep("--seeds", "2", "--journal", journal) == 2
        err = capsys.readouterr().err
        assert "already exists" in err and "--resume" in err
        # The refused run must not have touched the journal.
        assert sorted(SweepJournal.peek(journal)) == [0, 1]

    def test_resume_requires_journal(self, capsys):
        assert sweep("--seeds", "2", "--resume") == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_resume_extends_a_partial_sweep(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        assert sweep("--seeds", "3", "--journal", journal) == 0
        capsys.readouterr()
        assert sweep("--seeds", "6", "--journal", journal, "--resume") == 0
        out = capsys.readouterr().out
        assert "resumed    : 3 seed(s)" in out
        assert sorted(SweepJournal.peek(journal)) == [0, 1, 2, 3, 4, 5]

    def test_resume_onto_wrong_scenario_refused(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        assert sweep("--seeds", "2", "--journal", journal) == 0
        capsys.readouterr()
        code = cli.main([
            "sweep", "--workload", "random", "--n", "8",
            "--seeds", "2", "--journal", journal, "--resume",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "different scenario" in err
        assert "Traceback" not in err

    def test_seed_start_offsets_the_range(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        assert sweep(
            "--seeds", "3", "--seed-start", "10", "--journal", journal
        ) == 0
        assert sorted(SweepJournal.peek(journal)) == [10, 11, 12]

    def test_unfinished_seeds_exit_nonzero(self, capsys):
        # One round is never enough to gather this workload: the sweep
        # must report the not-gathered seeds through its exit code.
        code = cli.main([
            "sweep", "--workload", "asymmetric", "--n", "6", "--f", "1",
            "--scheduler", "round-robin", "--crashes", "after-move",
            "--movement", "rigid", "--max-rounds", "1", "--seeds", "2",
        ])
        assert code == 1
        assert "0/2 seed(s)" in capsys.readouterr().out

    def test_chaos_from_environment_is_survived(
        self, tmp_path, capsys, monkeypatch
    ):
        # REPRO_CHAOS reaches the sweep through parallel_map's default;
        # serial execution converts kills to retried exceptions.  The
        # journal must still end up bit-identical to a clean run.
        monkeypatch.setenv("REPRO_CHAOS", "seed=2,kill=0.2,error=0.1")
        journal = str(tmp_path / "sweep.jsonl")
        assert sweep(
            "--seeds", "4", "--retries", "8", "--backoff", "0",
            "--journal", journal,
        ) == 0
        monkeypatch.delenv("REPRO_CHAOS")
        baseline = run_batch(SCENARIO, range(4), chaos=ChaosPolicy())
        completed = SweepJournal.peek(journal)
        for seed, expected in zip(range(4), baseline):
            assert completed[seed].final_positions == expected.final_positions
            assert completed[seed].total_distance == expected.total_distance

    def test_journal_is_valid_jsonl_with_header(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        assert sweep("--seeds", "2", "--journal", journal) == 0
        with open(journal, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert lines[0]["format"] == "repro-sweep-v1"
        assert Scenario.from_dict(lines[0]["scenario"]) == SCENARIO
        assert [entry["seed"] for entry in lines[1:]] == [0, 1]
