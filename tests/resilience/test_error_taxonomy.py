"""Worker exceptions must surface through the structured taxonomy.

Regression for the broad ``except Exception`` the pool used to rely on:
a worker raising a *non*-``Exception`` ``BaseException`` (``sys.exit``,
``GeneratorExit``) escaped the retry loop and aborted the whole sweep —
forfeiting wait-freedom — instead of being charged to its item as a
crash.  These tests pin the fixed contract: any such escapee is wrapped
as :class:`WorkerCrashError`, retried on its own budget, reported once
in the final taxonomy-typed failure, and never blocks the other items.
"""

import logging

import pytest

from repro.resilience import (
    ChaosPolicy,
    ResilientExecutor,
    RunPolicy,
    WorkerCrashError,
)
from repro.resilience import pool as pool_module

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

FAST = RunPolicy(retries=1, backoff=0.0, tick=0.02)

NO_CHAOS = ChaosPolicy()


def square(x):
    return x * x


def exit_on_three(x):
    # SystemExit subclasses BaseException, not Exception: the classic
    # taxonomy escapee (a worker calling sys.exit() from a CLI shim).
    if x == 3:
        raise SystemExit(86)
    return x * x


@pytest.fixture(autouse=True)
def _reset_warn_once():
    # The warn-once registry is process-global by design; isolate tests.
    pool_module._warned.clear()
    yield
    pool_module._warned.clear()


class TestBaseExceptionSurfacesAsWorkerCrash:
    def test_serial(self):
        serial = ResilientExecutor(None, policy=FAST)
        with pytest.raises(WorkerCrashError) as err:
            serial.map_resilient(
                exit_on_three, [1, 3], keys=["k1", "k3"], chaos=NO_CHAOS
            )
        assert "k3" in str(err.value)
        assert "SystemExit" in str(err.value)
        assert set(err.value.failures) == {"k3"}
        assert isinstance(err.value.failures["k3"], WorkerCrashError)

    def test_pooled(self):
        executor = ResilientExecutor(2, policy=FAST)
        try:
            with pytest.raises(WorkerCrashError) as err:
                executor.map_resilient(
                    exit_on_three,
                    [1, 3],
                    keys=["k1", "k3"],
                    chaos=NO_CHAOS,
                )
        finally:
            executor.shutdown(cancel=True)
        assert set(err.value.failures) == {"k3"}

    def test_other_items_still_complete(self):
        # Wait-freedom: the doomed item fails alone; every healthy item
        # is computed and checkpointed.
        seen = []
        serial = ResilientExecutor(None, policy=FAST)
        with pytest.raises(WorkerCrashError):
            serial.map_resilient(
                exit_on_three,
                [1, 2, 3, 4],
                keys=["k1", "k2", "k3", "k4"],
                chaos=NO_CHAOS,
                on_result=lambda i, v: seen.append((i, v)),
            )
        assert (0, 1) in seen and (1, 4) in seen and (3, 16) in seen

    def test_warns_once_not_per_retry(self, caplog):
        serial = ResilientExecutor(None, policy=RunPolicy(retries=3, backoff=0.0))
        with caplog.at_level(logging.WARNING, logger=pool_module.logger.name):
            with pytest.raises(WorkerCrashError):
                serial.map_resilient(
                    exit_on_three, [3], keys=["k3"], chaos=NO_CHAOS
                )
        warnings = [
            rec for rec in caplog.records if "SystemExit" in rec.getMessage()
        ]
        assert len(warnings) == 1  # four attempts, one log line
        assert "warning once" in warnings[0].getMessage()


class TestObserverFailuresAreContained:
    def test_raising_on_failure_observer_warns_once(self, caplog):
        def bad_observer(key, exc, strike):
            raise RuntimeError("observer bug")

        serial = ResilientExecutor(None, policy=FAST)
        with caplog.at_level(logging.WARNING, logger=pool_module.logger.name):
            with pytest.raises(WorkerCrashError):
                serial.map_resilient(
                    exit_on_three,
                    [3],
                    keys=["k3"],
                    chaos=NO_CHAOS,
                    on_failure=bad_observer,
                )
        observer_warnings = [
            rec
            for rec in caplog.records
            if "on_failure observer raised" in rec.getMessage()
        ]
        # Two attempts -> two observer calls, but one log line.
        assert len(observer_warnings) == 1

    def test_raising_observer_does_not_change_results(self):
        def bad_observer(key, exc, strike):
            raise RuntimeError("observer bug")

        chaos = None
        for seed in range(10_000):
            candidate = ChaosPolicy(seed=seed, error=0.5, match="k1")
            if (
                candidate.decide("k1", 0) == "error"
                and candidate.decide("k1", 1) is None
            ):
                chaos = candidate
                break
        assert chaos is not None
        serial = ResilientExecutor(None, policy=FAST)
        assert serial.map_resilient(
            square,
            [1, 2],
            keys=["k1", "k2"],
            chaos=chaos,
            on_failure=bad_observer,
        ) == [1, 4]
