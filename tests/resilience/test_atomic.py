"""Atomic file placement: temp file + fsync + rename."""

import os

import pytest

from repro.resilience import atomic_write


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write(path, '{"a": 1}\n')
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == '{"a": 1}\n'

    def test_replaces_existing_file(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write(path, "old")
        atomic_write(path, "new")
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == "new"

    def test_creates_missing_parent_directories(self, tmp_path):
        path = str(tmp_path / "a" / "b" / "out.json")
        atomic_write(path, "x")
        assert os.path.exists(path)

    def test_no_temp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write(path, "x")
        assert sorted(os.listdir(tmp_path)) == ["out.json"]

    def test_failure_leaves_target_untouched_and_no_droppings(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write(path, "original")
        # A payload the text handle rejects fails mid-write: the original
        # file must survive and the temp file must be cleaned up.
        with pytest.raises(TypeError):
            atomic_write(path, b"bytes are not text")  # type: ignore[arg-type]
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == "original"
        assert sorted(os.listdir(tmp_path)) == ["out.json"]
