"""Corrupted-input corpus: every loader fails structured, never raw.

Truncated JSONL, garbage bytes and wrong-version headers must surface
as :class:`TraceFormatError` (a :class:`ValueError` carrying path +
line/offset) from the loaders, and as a one-line ``error:`` diagnostic
with a non-zero exit from the CLI — never a traceback.
"""

import json
import pickle

import pytest

from repro import cli
from repro.bench import HISTORY_SCHEMA, load_history
from repro.experiments.runner import Scenario, run_scenario
from repro.obs import read_events
from repro.resilience import ReproError, TraceFormatError
from repro.sim.replay import load_trace

SCENARIO = Scenario(
    workload="asymmetric",
    n=6,
    f=1,
    scheduler="round-robin",
    crashes="after-move",
    movement="rigid",
    max_rounds=2_000,
)


@pytest.fixture
def trace_json():
    result = run_scenario(SCENARIO, 0, record_trace=True)
    return result.trace.to_json(indent=2)


class TestErrorTaxonomy:
    def test_trace_format_error_is_a_value_error(self):
        # Pre-existing `except ValueError` fallbacks (the stats command,
        # older tests) must keep working across the taxonomy migration.
        assert issubclass(TraceFormatError, ValueError)
        assert issubclass(TraceFormatError, ReproError)

    def test_exit_codes(self):
        assert ReproError("x").exit_code == 1
        assert TraceFormatError("x").exit_code == 2

    def test_pickles_across_process_boundaries(self):
        # Worker exceptions travel through the pool's result queue.
        exc = TraceFormatError("bad file", path="/p", line=3, offset=17)
        restored = pickle.loads(pickle.dumps(exc))
        assert str(restored) == "bad file"
        assert (restored.path, restored.line, restored.offset) == ("/p", 3, 17)


class TestTraceLoader:
    def test_truncated_trace(self, tmp_path, trace_json):
        path = tmp_path / "trace.json"
        path.write_text(trace_json[: len(trace_json) // 2])
        with pytest.raises(TraceFormatError) as info:
            load_trace(str(path))
        assert info.value.path == str(path)
        assert info.value.line is not None

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_bytes(b"\x00\xff\xfenot json at all")
        with pytest.raises(TraceFormatError):
            load_trace(str(path))

    def test_wrong_version_header(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"format": "repro-trace-v99", "records": []}))
        with pytest.raises(TraceFormatError, match="repro-trace-v99"):
            load_trace(str(path))

    def test_malformed_record(self, tmp_path, trace_json):
        data = json.loads(trace_json)
        del data["records"][1]["destinations"]
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(data))
        with pytest.raises(TraceFormatError, match="round record 1"):
            load_trace(str(path))

    def test_missing_records_array(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"format": "repro-trace-v2", "meta": None}))
        with pytest.raises(TraceFormatError, match="no records"):
            load_trace(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot read"):
            load_trace(str(tmp_path / "nope.json"))


class TestBenchLoader:
    def test_truncated_history(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text('{"schema": "repro-bench/2", "latest": {"mic')
        with pytest.raises(TraceFormatError) as info:
            load_history(str(path))
        assert info.value.path == str(path)

    def test_foreign_schema(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"schema": "someone-elses/9"}))
        with pytest.raises(TraceFormatError, match=HISTORY_SCHEMA):
            load_history(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot read"):
            load_history(str(tmp_path / "nope.json"))


class TestObsLoader:
    HEADER = json.dumps({"format": "repro-obs-v1", "meta": None})

    def test_undecodable_payload_line_is_reported_not_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(self.HEADER + '\n{"round_index": 0, "eng\n')
        with pytest.raises(TraceFormatError) as info:
            read_events(str(path))
        assert info.value.line == 2
        assert "undecodable" in str(info.value)

    def test_malformed_event_reported_with_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(self.HEADER + '\n{"not_an_event": true}\n')
        with pytest.raises(TraceFormatError, match="line 2"):
            read_events(str(path))

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(self.HEADER + "\n[1, 2, 3]\n")
        with pytest.raises(TraceFormatError, match="not an object"):
            read_events(str(path))

    def test_wrong_header_stays_plain_value_error(self, tmp_path):
        # The stats command relies on a header mismatch being a
        # ValueError (it then retries the input as a trace archive).
        path = tmp_path / "events.jsonl"
        path.write_text('{"format": "other"}\n')
        with pytest.raises(ValueError):
            read_events(str(path))


class TestCliSurface:
    """Corrupted files through the CLI: structured stderr, exit 2."""

    def run_cli(self, capsys, *argv):
        code = cli.main(list(argv))
        captured = capsys.readouterr()
        assert "Traceback" not in captured.err
        assert "Traceback" not in captured.out
        return code, captured

    def test_stats_on_garbage(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("][ not json")
        code, captured = self.run_cli(capsys, "stats", str(path))
        assert code == 2
        assert captured.err.startswith("error:")

    def test_stats_on_truncated_obs_stream(self, tmp_path, capsys, trace_json):
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps({"format": "repro-obs-v1", "meta": None})
            + '\n{"round_index": 0, "eng\n'
        )
        code, captured = self.run_cli(capsys, "stats", str(path))
        assert code == 2
        assert "line 2" in captured.err

    def test_check_replay_on_truncated_trace(self, tmp_path, capsys, trace_json):
        path = tmp_path / "trace.json"
        path.write_text(trace_json[: len(trace_json) // 2])
        code, captured = self.run_cli(capsys, "check", "--replay", str(path))
        assert code == 2
        assert captured.err.startswith("error:")
        assert str(path) in captured.err

    def test_sweep_resume_on_corrupted_journal(self, tmp_path, capsys):
        path = tmp_path / "sweep.jsonl"
        path.write_text('{"format": "repro-sweep-v1", "scenario"\n')
        code, captured = self.run_cli(
            capsys,
            "sweep",
            "--workload", "asymmetric", "--n", "6", "--f", "1",
            "--scheduler", "round-robin", "--crashes", "after-move",
            "--movement", "rigid", "--seeds", "2",
            "--journal", str(path), "--resume",
        )
        assert code == 2
        assert captured.err.startswith("error:")
