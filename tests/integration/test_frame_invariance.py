"""Disorientation with chirality: global behaviour must not depend on
the robots' private coordinate systems.

The paper's robots have no common North and no common unit of distance,
only a common clockwise direction.  The simulator realizes this with
random orientation-preserving frames; these tests pin down that the
*global* behaviour is frame-independent: identity-frame runs and
random-frame runs of the same deterministic scenario produce the same
trajectory up to numerical noise.
"""

import pytest

from repro.algorithms import WaitFreeGather
from repro.core import Configuration, classify, wait_free_gather
from repro.geometry import Point, random_frame
from repro.sim import FullySynchronous, RigidMovement, Simulation
from repro.workloads import generate

import random


WORKLOADS = ["asymmetric", "multiple", "linear-unique", "regular-polygon",
             "linear-interval", "qr-occupied-center"]


def _framed_destination(points, me, frame):
    config = Configuration([frame.to_local(p) for p in points])
    dest_local = wait_free_gather(config, frame.to_local(me))
    return frame.to_global(dest_local)


class TestSingleStepEquivariance:
    """wait_free_gather commutes with orientation-preserving frames."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_destination_equivariant(self, workload):
        points = generate(workload, 8, 2)
        reference = {
            me: wait_free_gather(Configuration(points), me)
            for me in Configuration(points).support
        }
        for frame_seed in range(5):
            frame = random_frame(
                random.Random(frame_seed), origin=Point(1.5, -0.5)
            )
            for me, expected in reference.items():
                got = _framed_destination(points, me, frame)
                assert got.distance_to(expected) < 1e-6, (
                    f"{workload} frame {frame_seed} at {me}"
                )

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_classification_invariant(self, workload):
        points = generate(workload, 8, 3)
        reference = classify(Configuration(points))
        for frame_seed in range(5):
            frame = random_frame(random.Random(frame_seed))
            framed = Configuration([frame.to_local(p) for p in points])
            assert classify(framed) is reference


class TestWholeRunEquivalence:
    def test_identity_vs_random_frames_same_deterministic_run(self):
        # FSYNC + rigid motion is fully deterministic modulo frames: the
        # two runs must visit the same global configurations.
        points = generate("asymmetric", 7, 4)
        res_id = Simulation(
            WaitFreeGather(), points, frames="identity",
            scheduler=FullySynchronous(), movement=RigidMovement(), seed=1,
        ).run()
        res_rand = Simulation(
            WaitFreeGather(), points, frames="random",
            scheduler=FullySynchronous(), movement=RigidMovement(), seed=2,
        ).run()
        assert res_id.gathered and res_rand.gathered
        assert res_id.rounds == res_rand.rounds
        assert res_id.gathering_point.distance_to(res_rand.gathering_point) < 1e-6

    def test_algorithm_genuinely_consumes_chirality(self):
        # The algorithm is equivariant under orientation-PRESERVING maps
        # (tested above) but deliberately NOT under reflections: the
        # clockwise side-step in a mirrored world is a different
        # geometric move, so F(mirror(C)) != mirror(F(C)).  If this test
        # ever finds them equal, the implementation stopped consuming
        # the chirality assumption.
        points = [Point(0, 0)] * 3 + [Point(1, 0), Point(3, 0), Point(0, 2)]
        config = Configuration(points)
        blocked = Point(3, 0)
        d = wait_free_gather(config, blocked)
        mirrored = [Point(p.x, -p.y) for p in points]
        d_mirror = wait_free_gather(Configuration(mirrored), Point(3, 0))
        assert d.y != 0.0  # the side-step leaves the axis...
        assert d_mirror.distance_to(Point(d.x, -d.y)) > 0.1  # ...chirally
        # Both are still legal side-steps: distance to the target kept.
        assert abs(d.norm() - 3.0) < 1e-9
        assert abs(d_mirror.norm() - 3.0) < 1e-9
