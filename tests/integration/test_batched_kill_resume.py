"""SIGKILL a *batched* sweep mid-chunk, resume it, require bit identity.

Mirror of ``test_kill_resume.py`` for the batched engine, where the
distributed/retried/killed work unit is a seed *chunk* but the journal
records per seed.  Three extra hazards over the scalar case, all
exercised here:

* the kill can land while a chunk's seeds are being appended, leaving a
  torn final record — we inject one deterministically on top of the
  SIGKILL to make sure the resume truncates it instead of choking;
* a resume may use a *different* ``--batch-size``, re-chunking the
  remaining seeds — no seed may be double-recorded and results must be
  chunk-invariant;
* journaled seeds must be excluded *before* chunking, else a resumed
  chunk would recompute (and re-append) completed seeds.
"""

import json
import os
import signal
import subprocess
import sys
import time

from repro.experiments.runner import Scenario, run_batch
from repro.resilience import ChaosPolicy, SweepJournal

SCENARIO = Scenario(
    workload="asymmetric",
    n=6,
    f=1,
    scheduler="round-robin",
    crashes="after-move",
    movement="rigid",
    max_rounds=2_000,
    engine="batched",
)

N_SEEDS = 8

SWEEP_ARGS = [
    "sweep",
    "--workload", "asymmetric", "--n", "6", "--f", "1",
    "--scheduler", "round-robin", "--crashes", "after-move",
    "--movement", "rigid", "--max-rounds", "2000",
    "--engine", "batched",
    "--seeds", str(N_SEEDS),
]


def _env(**extra):
    repo_src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ)
    env.pop("REPRO_CHAOS", None)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = os.path.abspath(repo_src) + (
        os.pathsep + existing if existing else ""
    )
    env.update(extra)
    return env


def _journal_entries(path):
    """Seeds of the complete (newline-terminated) journal entry lines."""
    if not os.path.exists(path):
        return []
    with open(path, "rb") as handle:
        raw = handle.read()
    complete = raw[: raw.rfind(b"\n") + 1]
    lines = [line for line in complete.split(b"\n") if line]
    return [json.loads(line)["seed"] for line in lines[1:]]


class TestBatchedKillResume:
    def test_sigkilled_batched_sweep_resumes_bit_identically(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")

        # Phase 1: sweep with --batch-size 2 (4 chunks of 2 seeds) and a
        # chaos delay slowing every *chunk* attempt, wait until at least
        # one chunk (2 seeds) is checkpointed, then SIGKILL.
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", *SWEEP_ARGS,
                "--batch-size", "2", "--journal", journal,
            ],
            env=_env(REPRO_CHAOS="seed=1,delay=1.0,delay_s=0.6"),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 120
            while len(_journal_entries(journal)) < 2:
                if proc.poll() is not None or time.monotonic() > deadline:
                    break
                time.sleep(0.02)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait(timeout=30)

        before = _journal_entries(journal)
        assert before, "no seed was checkpointed before the kill"
        assert len(before) < N_SEEDS, (
            "sweep finished before it could be killed; the chaos delay "
            "should have made that impossible"
        )
        with open(journal, "rb") as handle:
            raw_before = handle.read()
        valid_prefix = raw_before[: raw_before.rfind(b"\n") + 1]

        # A SIGKILL mid-chunk can tear the record being appended.  The
        # kill above may or may not have landed inside a write, so make
        # the hazard deterministic: append half a record, no newline.
        torn = json.dumps({"seed": 999_999, "result": {"v": 1}})[:-8]
        with open(journal, "ab") as handle:
            handle.write(torn.encode())

        # Phase 2: resume without chaos and with a *different* batch
        # size, re-chunking the remaining seeds.  The torn tail must be
        # discarded, completed seeds skipped (bytes preserved verbatim),
        # and no seed recorded twice.
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro", *SWEEP_ARGS,
                "--batch-size", "3", "--journal", journal, "--resume",
            ],
            env=_env(),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert f"resumed    : {len(before)} seed(s)" in completed.stdout

        with open(journal, "rb") as handle:
            raw_after = handle.read()
        assert raw_after.startswith(valid_prefix)
        assert torn.encode() not in raw_after
        entries = _journal_entries(journal)
        assert entries == list(range(N_SEEDS))
        assert len(entries) == len(set(entries)), "a seed was double-recorded"

        # Phase 3: bit-identical to a clean in-process batched run with
        # yet another chunking (results are chunk-invariant).
        baseline = run_batch(
            SCENARIO, range(N_SEEDS), chaos=ChaosPolicy(), batch_size=5
        )
        recovered = SweepJournal.peek(journal, SCENARIO.to_dict())
        for seed, expected in zip(range(N_SEEDS), baseline):
            got = recovered[seed]
            assert got.verdict == expected.verdict
            assert got.rounds == expected.rounds
            assert got.final_positions == expected.final_positions
            assert got.live_ids == expected.live_ids
            assert got.crashed_ids == expected.crashed_ids
            assert got.gathering_point == expected.gathering_point
            assert got.total_distance == expected.total_distance
            assert got.classes_seen == expected.classes_seen
