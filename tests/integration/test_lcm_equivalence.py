"""Equivalence and property matrix for the unified LCM engine.

Two legacy engines (``Simulation`` for ATOM/SSYNC, ``AsyncSimulation``
for phased ASYNC) are now one loop parameterised by an activation
model.  This suite pins the contract of that unification:

1. ``AsyncSimulation`` is a thin wrapper — seed for seed it must be
   *bit-identical* to ``Simulation(activation=PhasedActivation())``.
2. The scheduler x movement x crash matrix runs on both activation
   models, including the cells that were broken or unreachable before
   the unification: async + collusive-stop (the identity hooks were
   dropped), the Poisson scheduler, per-robot speeds and limited
   visibility.
3. Every cell is deterministic (same seed, same outcome) and reaches a
   sensible verdict — crash-tolerant gathering where the paper's
   assumptions hold.
"""

import pytest

from repro.experiments.runner import Scenario, run_scenario

SCHEDULERS = ["fsync", "round-robin", "random", "laggard", "half-split", "poisson"]
MOVEMENTS = [
    "rigid",
    "adversarial-stop",
    "random-stop",
    "collusive-stop",
    "per-robot-speed",
]
CRASHES = ["none", "random", "after-move", "elected"]
ENGINES = ["atom", "async"]


def _run(engine, scheduler, movement, crash, seed, visibility=None):
    scenario = Scenario(
        workload="asymmetric",
        n=6,
        f=0 if crash == "none" else 2,
        scheduler=scheduler,
        crashes=crash,
        movement=movement,
        engine=engine,
        visibility=visibility,
        max_rounds=50_000,
    )
    return run_scenario(scenario, seed)


def assert_identical(a, b):
    assert a.verdict == b.verdict
    assert a.rounds == b.rounds
    assert a.live_ids == b.live_ids
    assert a.crashed_ids == b.crashed_ids
    assert a.final_positions == b.final_positions
    assert a.gathering_point == b.gathering_point
    assert a.total_distance == b.total_distance


class TestWrapperEquivalence:
    """AsyncSimulation == Simulation + PhasedActivation, bitwise."""

    @pytest.mark.parametrize("movement", MOVEMENTS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_async_engine_is_phased_activation(self, movement, seed):
        from repro.algorithms import WaitFreeGather
        from repro.experiments.runner import make_crashes, make_movement, make_scheduler
        from repro.sim import AsyncSimulation, PhasedActivation, Simulation
        from repro.workloads import generate

        positions = generate("asymmetric", 6, seed)

        def build(cls, **extra):
            return cls(
                WaitFreeGather(),
                list(positions),
                scheduler=make_scheduler("random"),
                crash_adversary=make_crashes("random", 2),
                movement=make_movement(movement),
                seed=seed,
                **extra,
            )

        wrapped = build(AsyncSimulation, max_ticks=50_000).run()
        direct = build(
            Simulation,
            activation=PhasedActivation(),
            fairness_bound=64,
            max_rounds=50_000,
        ).run()
        assert_identical(wrapped, direct)


class TestSchedulerMovementCrashMatrix:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("crash", CRASHES)
    @pytest.mark.parametrize("movement", MOVEMENTS)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_cell_deterministic_and_sane(self, engine, scheduler, movement, crash):
        first = _run(engine, scheduler, movement, crash, seed=0)
        again = _run(engine, scheduler, movement, crash, seed=0)
        assert_identical(first, again)
        # Under the paper's assumptions every cell must terminate in a
        # gathered state — crashes are tolerated, adversaries only slow.
        assert first.verdict == "gathered"
        assert first.live_ids and not (set(first.live_ids) & set(first.crashed_ids))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("engine", ENGINES)
    def test_collusion_cell_actually_colludes(self, engine, seed):
        """Regression for the silent degradation: on a collinear
        workload (movers share rays, so the adversary can coordinate)
        the collusive cell must not be bit-identical to the rigid cell,
        while still gathering.  Before the unification the async engine
        skipped ``begin_round``/``endpoint_for`` and this cell WAS
        rigid."""

        def go(movement):
            scenario = Scenario(
                workload="linear-unique",
                n=6,
                f=2,
                scheduler="fsync",
                crashes="random",
                movement=movement,
                engine=engine,
                max_rounds=50_000,
            )
            return run_scenario(scenario, seed)

        colluded, rigid = go("collusive-stop"), go("rigid")
        assert colluded.verdict == rigid.verdict == "gathered"
        assert (
            colluded.rounds != rigid.rounds
            or colluded.total_distance != rigid.total_distance
        )


class TestNewAxes:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_generous_visibility_still_gathers(self, engine):
        result = _run(engine, "random", "random-stop", "random", 1, visibility=50.0)
        assert result.gathered

    @pytest.mark.parametrize("engine", ENGINES)
    def test_visibility_label_and_determinism(self, engine):
        scenario = Scenario(
            workload="asymmetric",
            n=6,
            f=2,
            engine=engine,
            visibility=3.0,
            max_rounds=5_000,
        )
        assert "vis=3" in scenario.label()
        assert_identical(run_scenario(scenario, 0), run_scenario(scenario, 0))

    def test_batched_engine_rejects_visibility(self):
        from repro.experiments.runner import run_batched

        scenario = Scenario(
            workload="asymmetric", n=6, engine="batched", visibility=5.0
        )
        with pytest.raises(ValueError, match="visibility"):
            run_batched(scenario, [0])

    def test_scenario_roundtrip_with_visibility(self):
        scenario = Scenario(workload="asymmetric", n=6, visibility=8.0)
        assert Scenario(**scenario.to_dict()) == scenario
        # Old dicts without the field still load (corpus compatibility).
        legacy = {k: v for k, v in scenario.to_dict().items() if k != "visibility"}
        assert Scenario.from_dict(legacy).visibility is None
