"""End-to-end chaos against a live serve daemon.

The serve layer's acceptance properties under injected faults, proved
over real sockets against a real :class:`~repro.serve.ReproServer`:

* a worker SIGKILLed mid-request yields a *structured* 500 (never a
  torn body or a dead connection), flips readiness via the circuit
  breaker, and the next healthy request closes the breaker again;
* deterministic store read/write faults degrade the cache through its
  production paths — a failed read is a miss, a failed write leaves the
  daemon memory-only — while every response stays correct-or-structured
  and repeated keys stay byte-identical;
* a sweep whose seed crashes terminates its chunked stream cleanly with
  a structured last line;
* after the storm, the on-disk store verifies clean: chaos may starve
  the disk layer, but it can never corrupt it.

Faults are scheduled by :class:`~repro.resilience.ChaosPolicy` — pure
functions of ``(seed, key, attempt)`` — so every run of this suite
injects the identical fault sequence.
"""

import json
import threading

import pytest

from repro.resilience import ChaosPolicy, RunPolicy
from repro.serve.store import ResultStore

from ..serve.client import serving

SCENARIO = {
    "workload": "random",
    "n": 6,
    "f": 1,
    "crashes": "random",
    "max_rounds": 5000,
}

#: Worker-side chaos: every attempt of seed 7 SIGKILLs its worker.
KILL_SEED7 = "seed=1,kill=1.0,match=seed7"


class TestWorkerKill:
    def test_kill_mid_request_is_structured_500_then_recovery(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS", KILL_SEED7)
        with serving(
            workers=2,
            policy=RunPolicy(retries=1),
            breaker_threshold=1,
        ) as client:
            status, _, raw = client.run(SCENARIO, seed=7)
            body = json.loads(raw)
            assert status == 500
            assert body["kind"] == "error"
            assert body["error"] == "WorkerCrashError"

            # The crash tripped the breaker: alive, not ready.
            assert client.request("GET", "/readyz")[0] == 503
            status, _, raw = client.healthz()
            assert status == 200
            assert json.loads(raw)["breaker"] == "open"

            # The pool rebuilt; an unkilled seed computes — and that
            # success is the breaker's proof of recovery.
            status, _, raw = client.run(SCENARIO, seed=8)
            assert status == 200
            assert json.loads(raw)["kind"] == "run"
            assert client.request("GET", "/readyz")[0] == 200
            trips = client.metrics()["robustness"]["breaker"]["trips"]
            assert trips == 1

    def test_sweep_with_killed_seed_terminates_stream_cleanly(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS", KILL_SEED7)
        with serving(workers=2, policy=RunPolicy(retries=1)) as client:
            status, _, raw = client.sweep(
                SCENARIO, seed_start=4, seed_count=6
            )
            # read() returned, so the chunked coding terminated; every
            # line must parse, and the crash is the structured tail.
            assert status == 200
            lines = [json.loads(line) for line in raw.decode().splitlines()]
            assert lines  # never an empty torn stream
            assert lines[-1]["kind"] == "error"
            assert lines[-1]["error"] == "WorkerCrashError"
            for line in lines[:-1]:
                assert line["kind"] == "run"


class TestStoreFaults:
    def test_write_faults_degrade_daemon_to_memory_only(self, tmp_path):
        chaos = ChaosPolicy(seed=1, store_write=1.0)
        root = str(tmp_path / "store")
        with serving(store_root=root, chaos=chaos) as client:
            status, headers, first = client.run(SCENARIO, seed=1)
            assert status == 200
            assert headers["X-Repro-Cache"] == "miss"
            # Memory still serves the entry the disk refused.
            status, headers, again = client.run(SCENARIO, seed=1)
            assert status == 200
            assert headers["X-Repro-Cache"] == "hit"
            assert again == first
            cache = client.metrics()["cache"]
            assert cache["write_errors"] >= 1
        assert ResultStore(root).disk_stats()["entries"] == 0

    def test_fault_storm_stays_correct_or_structured(self, tmp_path):
        # Slow handlers + flaky disk reads/writes, all at once, with a
        # one-entry memory LRU so repeated keys actually hit the faulty
        # disk path.  Every response must be a valid run body; same-key
        # responses must be byte-identical regardless of which path
        # (memory, disk, recompute) produced them.
        chaos = ChaosPolicy(
            seed=7,
            serve_slow=0.3,
            serve_slow_s=0.01,
            store_read=0.4,
            store_write=0.4,
        )
        root = str(tmp_path / "store")
        seeds = [0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2]
        with serving(
            store_root=root, memory_entries=1, chaos=chaos
        ) as client:
            bodies = {}
            for seed in seeds:
                status, _, raw = client.run(SCENARIO, seed=seed)
                assert status == 200
                parsed = json.loads(raw)
                assert parsed["kind"] == "run"
                assert parsed["seed"] == seed
                bodies.setdefault(seed, raw)
                assert raw == bodies[seed]
            document = client.metrics()
            cache = document["cache"]
            # The storm actually exercised the fault paths.
            assert cache["read_errors"] + cache["write_errors"] >= 1
            assert document["robustness"]["breaker_state"] == "closed"
        # Chaos starved the disk layer; it never corrupted it.
        report = ResultStore(root).verify_disk(repair=False)
        assert report["corrupt"] == 0
        assert report["unreadable"] == 0

    def test_concurrent_storm_converges_cache(self, tmp_path):
        chaos = ChaosPolicy(seed=3, store_write=0.5, store_read=0.5)
        root = str(tmp_path / "store")
        with serving(store_root=root, memory_entries=1, chaos=chaos) as client:
            results = []
            lock = threading.Lock()

            def fire(seed):
                response = client.run(SCENARIO, seed=seed)
                with lock:
                    results.append((seed, response))

            threads = [
                threading.Thread(target=fire, args=(seed,))
                for seed in [0, 1, 0, 1, 0, 1]
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            by_seed = {}
            for seed, (status, _, raw) in results:
                assert status == 200
                by_seed.setdefault(seed, set()).add(raw)
            # Convergence: one body per key across every interleaving.
            for seed, distinct in by_seed.items():
                assert len(distinct) == 1, f"seed {seed} produced {distinct}"
        report = ResultStore(root).verify_disk(repair=False)
        assert report["corrupt"] == 0


class TestSlowHandlerChaos:
    def test_slow_handlers_trip_deadlines_not_errors(self):
        # Every handler sleeps 200ms; a 50ms deadline must 504 — and
        # the taxonomy mapping must hold under chaos, not just in the
        # happy path.
        chaos = ChaosPolicy(seed=1, serve_slow=1.0, serve_slow_s=0.2)
        with serving(chaos=chaos) as client:
            status, _, raw = client.run(SCENARIO, seed=1, deadline_s=0.05)
            assert status == 504
            assert json.loads(raw)["error"] == "RequestDeadlineError"
            # Without the deadline the same request just takes longer.
            status, _, raw = client.run(SCENARIO, seed=1)
            assert status == 200
            assert json.loads(raw)["kind"] == "run"
