"""Batched engine == scalar ATOM engine, seed for seed.

The batched engine's whole claim is that it is a *performance* change,
not a semantics change: for every (scenario, seed) it must reach the
same verdict after the same number of rounds, crash the same robots,
traverse the same classification sequence and leave every robot within
numerical tolerance of the scalar engine's final position.

The matrix crosses schedulers x movement models x crash adversaries so
each RNG substream (scheduling, movement, crashes) is exercised both
alone and together.  Frames differ by design — the scalar engine hands
each robot a private frame while the batched engine computes once in
the global frame — which is exactly the frame equivariance the
invariance suite establishes; agreement here is evidence the
equivariance argument holds end to end.
"""

import pytest

from repro.experiments.runner import Scenario, run_batched, run_scenario
from repro.geometry import kernels

needs_numpy = pytest.mark.skipif(
    "numpy" not in kernels.available_backends(),
    reason="NumPy not importable in this environment",
)

pytestmark = needs_numpy

POSITION_TOL = 1e-6

SCHEDULERS = ["fsync", "round-robin", "random"]
MOVEMENTS = ["rigid", "adversarial-stop", "random-stop", "collusive-stop"]
CRASHES = ["none", "random", "after-move", "elected"]

MATRIX = [
    (scheduler, movement, crash)
    for scheduler in SCHEDULERS
    for movement in MOVEMENTS
    for crash in CRASHES
]


def assert_equivalent(scalar, batched):
    assert batched.verdict == scalar.verdict
    assert batched.rounds == scalar.rounds
    assert batched.live_ids == scalar.live_ids
    assert batched.crashed_ids == scalar.crashed_ids
    assert batched.classes_seen == scalar.classes_seen
    assert batched.initial_class == scalar.initial_class
    assert set(batched.final_positions) == set(scalar.final_positions)
    for rid, p in scalar.final_positions.items():
        q = batched.final_positions[rid]
        assert abs(p.x - q.x) <= POSITION_TOL
        assert abs(p.y - q.y) <= POSITION_TOL
    if scalar.gathering_point is None:
        assert batched.gathering_point is None
    else:
        assert batched.gathering_point is not None
        assert (
            scalar.gathering_point.distance_to(batched.gathering_point)
            <= POSITION_TOL
        )
    assert batched.total_distance == pytest.approx(
        scalar.total_distance, abs=1e-6, rel=1e-9
    )


@pytest.mark.parametrize("scheduler,movement,crash", MATRIX)
def test_matrix_cell_matches_scalar(scheduler, movement, crash):
    scenario = Scenario(
        workload="random",
        n=7,
        f=0 if crash == "none" else 2,
        scheduler=scheduler,
        crashes=crash,
        movement=movement,
        max_rounds=2_000,
        engine="batched",
    )
    scalar_scenario = Scenario(
        **{**scenario.to_dict(), "engine": "atom"}
    )
    seeds = [0, 1]
    batched = run_batched(scenario, seeds)
    for seed, b in zip(seeds, batched):
        assert_equivalent(run_scenario(scalar_scenario, seed), b)


@pytest.mark.parametrize(
    "workload,n",
    [
        ("random", 10),
        ("asymmetric", 12),
        ("multiple", 11),
        ("regular-polygon", 12),
        ("linear-interval", 16),
    ],
)
def test_numpy_backend_workloads_match_scalar(workload, n):
    """Same comparison with the numpy kernels active on both engines,
    covering the batched memo pre-seeding paths (weber / ray loads /
    views) against the scalar per-sim kernel calls."""
    scenario = Scenario(
        workload=workload,
        n=n,
        f=1,
        scheduler="random",
        crashes="random",
        movement="adversarial-stop",
        max_rounds=2_000,
        engine="batched",
    )
    scalar_scenario = Scenario(**{**scenario.to_dict(), "engine": "atom"})
    with kernels.backend("numpy"):
        seeds = [0, 1, 2]
        batched = run_batched(scenario, seeds)
        for seed, b in zip(seeds, batched):
            assert_equivalent(run_scenario(scalar_scenario, seed), b)
