"""SIGKILL a sweep mid-flight, resume it, and require bitwise identity.

The hard end-to-end guarantee of the resilience layer: a sweep process
killed with SIGKILL (no cleanup handlers, possibly a torn journal line)
must resume from its checkpoint journal, skip the completed seeds, and
finish with a result set bit-identical to a clean sequential run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.runner import Scenario, run_batch
from repro.resilience import ChaosPolicy, SweepJournal

SCENARIO = Scenario(
    workload="asymmetric",
    n=6,
    f=1,
    scheduler="round-robin",
    crashes="after-move",
    movement="rigid",
    max_rounds=2_000,
)

N_SEEDS = 8

SWEEP_ARGS = [
    "sweep",
    "--workload", "asymmetric", "--n", "6", "--f", "1",
    "--scheduler", "round-robin", "--crashes", "after-move",
    "--movement", "rigid", "--max-rounds", "2000",
    "--seeds", str(N_SEEDS),
]


def _env(**extra):
    repo_src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ)
    env.pop("REPRO_CHAOS", None)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = os.path.abspath(repo_src) + (
        os.pathsep + existing if existing else ""
    )
    env.update(extra)
    return env


def _journal_entries(path):
    """Seeds of the complete (newline-terminated) journal entry lines."""
    if not os.path.exists(path):
        return []
    with open(path, "rb") as handle:
        raw = handle.read()
    complete = raw[: raw.rfind(b"\n") + 1]
    lines = [line for line in complete.split(b"\n") if line]
    return [json.loads(line)["seed"] for line in lines[1:]]


class TestKillResume:
    def test_sigkilled_sweep_resumes_bit_identically(self, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")

        # Phase 1: start the sweep with a chaos delay slowing every seed
        # (~0.6s each), wait until at least two seeds are checkpointed,
        # then SIGKILL the process — no atexit, no finally blocks.
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *SWEEP_ARGS, "--journal", journal],
            env=_env(REPRO_CHAOS="seed=1,delay=1.0,delay_s=0.6"),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 120
            while len(_journal_entries(journal)) < 2:
                if proc.poll() is not None or time.monotonic() > deadline:
                    break
                time.sleep(0.02)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait(timeout=30)

        before = _journal_entries(journal)
        assert before, "no seed was checkpointed before the kill"
        assert len(before) < N_SEEDS, (
            "sweep finished before it could be killed; the chaos delay "
            "should have made that impossible"
        )
        with open(journal, "rb") as handle:
            raw_before = handle.read()
        valid_prefix = raw_before[: raw_before.rfind(b"\n") + 1]

        # Phase 2: resume without chaos.  Completed seeds must be
        # skipped (their bytes survive verbatim), the rest computed.
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro", *SWEEP_ARGS,
                "--journal", journal, "--resume",
            ],
            env=_env(),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert f"resumed    : {len(before)} seed(s)" in completed.stdout

        # The journaled prefix survived byte for byte: resuming never
        # re-ran or rewrote a completed seed.
        with open(journal, "rb") as handle:
            raw_after = handle.read()
        assert raw_after.startswith(valid_prefix)
        assert _journal_entries(journal) == list(range(N_SEEDS))

        # Phase 3: the recovered result set is bit-identical to a clean
        # in-process sequential run.
        baseline = run_batch(SCENARIO, range(N_SEEDS), chaos=ChaosPolicy())
        recovered = SweepJournal.peek(journal, SCENARIO.to_dict())
        for seed, expected in zip(range(N_SEEDS), baseline):
            got = recovered[seed]
            assert got.verdict == expected.verdict
            assert got.rounds == expected.rounds
            assert got.final_positions == expected.final_positions
            assert got.live_ids == expected.live_ids
            assert got.crashed_ids == expected.crashed_ids
            assert got.gathering_point == expected.gathering_point
            assert got.total_distance == expected.total_distance
            assert got.classes_seen == expected.classes_seen
