"""End-to-end gathering: Theorem 5.1 exercised across the full matrix.

Every test here runs the complete stack — workload generator, private
frames, scheduler, crash adversary, movement model, classification tower,
algorithm — and asserts the only thing the paper promises: all correct
robots end up gathered.
"""

import pytest

from repro.algorithms import WaitFreeGather
from repro.analysis import InvariantMonitor
from repro.sim import (
    AdversarialStop,
    CollusiveStop,
    CrashAfterMove,
    CrashAtRounds,
    CrashElected,
    FullySynchronous,
    HalfSplitAdversary,
    LaggardAdversary,
    RandomCrashes,
    RandomStop,
    RigidMovement,
    RoundRobin,
    RandomSubset,
    Simulation,
)
from repro.workloads import generate

WORKLOADS = [
    "random",
    "asymmetric",
    "multiple",
    "linear-unique",
    "linear-interval",
    "regular-polygon",
    "biangular",
    "qr-occupied-center",
    "near-bivalent",
    "unsafe-ray",
]


def run(points, *, scheduler=None, crashes=None, movement=None, seed=0,
        max_rounds=15_000):
    sim = Simulation(
        WaitFreeGather(),
        points,
        scheduler=scheduler or FullySynchronous(),
        crash_adversary=crashes,
        movement=movement or RigidMovement(),
        seed=seed,
        max_rounds=max_rounds,
    )
    return sim.run()


class TestFaultFree:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_gathers_under_fsync(self, workload):
        for seed in range(3):
            result = run(generate(workload, 8, seed), seed=seed)
            assert result.gathered, f"{workload} seed {seed}: {result.verdict}"

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_gathers_under_round_robin(self, workload):
        result = run(
            generate(workload, 6, 1), scheduler=RoundRobin(), seed=1
        )
        assert result.gathered

    def test_small_teams(self):
        for n in (3, 4, 5):
            result = run(generate("random", n, 2), seed=2)
            assert result.gathered, f"n={n}"

    def test_already_gathered_is_instant(self):
        result = run(generate("gathered", 6, 1), seed=1)
        assert result.gathered
        assert result.rounds == 0


class TestMaximalCrashes:
    """f = n - 1: everyone but one robot may die."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_random_crashes(self, workload):
        n = 8
        result = run(
            generate(workload, n, 3),
            scheduler=RandomSubset(0.5),
            crashes=RandomCrashes(f=n - 1, rate=0.3),
            movement=RandomStop(0.05),
            seed=3,
        )
        assert result.gathered, f"{workload}: {result.verdict}"

    def test_crash_after_move_adversary(self):
        # Lemma 5.3 C2's adversary: re-block by crashing each mover.
        n = 8
        result = run(
            generate("multiple", n, 1),
            scheduler=RoundRobin(),
            crashes=CrashAfterMove(f=n - 1),
            movement=AdversarialStop(0.2),
            seed=7,
        )
        assert result.gathered

    def test_crash_elected_adversary(self):
        n = 8
        result = run(
            generate("asymmetric", n, 2),
            scheduler=RandomSubset(0.6),
            crashes=CrashElected(f=n - 1),
            seed=5,
        )
        assert result.gathered

    def test_single_survivor(self):
        # Crash all but robot 4 immediately: the lone survivor must
        # still satisfy GATHERED (it is trivially at one point and its
        # instruction converges to stay).
        n = 6
        schedule = {rid: 0 for rid in range(n) if rid != 4}
        result = run(
            generate("random", n, 4),
            scheduler=RandomSubset(0.7),
            crashes=CrashAtRounds(schedule),
            seed=6,
        )
        assert result.gathered
        assert len(result.live_ids) == 1


class TestHostileCombinations:
    def test_laggard_plus_adversarial_stop(self):
        result = run(
            generate("asymmetric", 7, 1),
            scheduler=LaggardAdversary(),
            crashes=RandomCrashes(f=6, rate=0.2),
            movement=AdversarialStop(0.15),
            seed=8,
        )
        assert result.gathered

    def test_half_split_scheduler(self):
        result = run(
            generate("near-bivalent", 8, 2),
            scheduler=HalfSplitAdversary(),
            movement=AdversarialStop(0.3),
            seed=9,
        )
        assert result.gathered

    def test_collusive_stop_cannot_trap_wfg(self):
        # The Definition 8 attack, full strength.
        for seed in range(4):
            result = run(
                generate("unsafe-ray", 8, seed),
                scheduler=FullySynchronous(),
                movement=CollusiveStop(0.2),
                seed=seed,
            )
            assert result.gathered, f"seed {seed}"

    def test_tiny_delta(self):
        result = run(
            generate("random", 6, 3),
            movement=AdversarialStop(0.005),
            seed=1,
            max_rounds=100_000,
        )
        assert result.gathered


class TestWithInvariants:
    """Full runs with every proof obligation checked each round."""

    @pytest.mark.parametrize(
        "workload", ["asymmetric", "linear-interval", "biangular", "unsafe-ray"]
    )
    def test_invariants_hold_under_fire(self, workload):
        monitor = InvariantMonitor()
        sim = Simulation(
            WaitFreeGather(),
            generate(workload, 8, 5),
            scheduler=RandomSubset(0.5),
            crash_adversary=RandomCrashes(f=7, rate=0.25),
            movement=RandomStop(0.05),
            seed=11,
            max_rounds=15_000,
        )
        sim.add_observer(monitor)
        result = sim.run()  # monitor raises on any violation
        assert result.gathered
        assert monitor.rounds_checked > 0
