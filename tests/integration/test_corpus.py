"""Integration: the archive -> replay -> verify reproducibility loop.

Two guarantees are pinned end to end:

* the **committed corpus** (``tests/corpus/*.json``) — traces of crashed
  runs recorded at the commit that introduced them — replays
  bit-identically on every backend, forever.  A failure here means a
  code change silently altered simulation semantics for archived
  executions.
* a **fresh archive** produced by ``run_batch`` failure archiving goes
  through the same loop: load, replay on both backends, verify
  invariants offline.
"""

import glob
import os

import pytest

from repro.analysis import verify_trace
from repro.experiments.runner import Scenario, run_batch
from repro.geometry import kernels
from repro.sim.replay import load_trace, replay_trace

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "..", "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS]
)
def test_committed_corpus_replays_bit_identically(path):
    trace = load_trace(path)
    assert trace.meta is not None and trace.meta.scenario is not None
    # Corpus traces record crash-adversary runs; keep them that way.
    assert trace.meta.scenario["f"] > 0
    for backend in kernels.available_backends():
        report = replay_trace(trace, backend=backend, path=path)
        assert report.ok, report.describe()


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS]
)
def test_committed_corpus_satisfies_invariants_offline(path):
    trace = load_trace(path)
    if trace.meta is not None and trace.meta.engine == "async":
        # The invariant suite encodes ATOM class-transition lemmas,
        # which ASYNC interleavings legitimately violate; async corpus
        # entries are covered by the bit-identical replay test above.
        pytest.skip("async-engine trace: ATOM invariants do not apply")
    monitor = verify_trace(trace)
    assert monitor.rounds_checked == len(trace)


def test_corpus_is_nonempty():
    assert len(CORPUS) >= 3


def test_fresh_crash_archive_round_trip(tmp_path):
    """A run with crashes that fails is archived by run_batch and the
    archive replays bit-identically under both backends."""
    corpus = str(tmp_path / "archive")
    scenario = Scenario(
        workload="asymmetric",
        n=6,
        f=2,
        crashes="random",
        movement="random-stop",
        max_rounds=4,  # too few rounds to gather -> guaranteed failure
    )
    results = run_batch(scenario, [0], archive_dir=corpus)
    assert not results[0].gathered
    archived = os.listdir(corpus)
    assert len(archived) == 1
    trace = load_trace(os.path.join(corpus, archived[0]))
    assert trace.meta.scenario == scenario.to_dict()
    for backend in kernels.available_backends():
        report = replay_trace(trace, backend=backend)
        assert report.ok, report.describe()
