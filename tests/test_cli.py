"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.workload == "random"
        assert args.algorithm == "wait-free-gather"

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--workload", "nope"])


class TestSimulate:
    def test_successful_run_exit_zero(self, capsys):
        code = main(
            ["simulate", "--workload", "asymmetric", "--n", "6", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict    : gathered" in out

    def test_crash_tolerant_run(self, capsys):
        code = main(
            [
                "simulate",
                "--workload", "random",
                "--n", "6",
                "--f", "5",
                "--crashes", "random",
                "--seed", "2",
            ]
        )
        assert code == 0
        assert "gathered" in capsys.readouterr().out

    def test_bivalent_reports_impossible(self, capsys):
        code = main(
            ["simulate", "--workload", "bivalent", "--n", "6", "--seed", "0"]
        )
        out = capsys.readouterr().out
        assert code == 0  # impossibility correctly detected is a success
        assert "impossible" in out

    def test_trace_flag_prints_rounds(self, capsys):
        main(
            [
                "simulate",
                "--workload", "multiple",
                "--n", "6",
                "--seed", "1",
                "--trace",
            ]
        )
        out = capsys.readouterr().out
        assert "[M]" in out


class TestClassify:
    def test_polygon_reports_qr(self, capsys):
        code = main(
            ["classify", "--workload", "regular-polygon", "--n", "6",
             "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "class  : QR" in out
        assert "qreg   : 6" in out

    def test_bivalent_reports_b(self, capsys):
        main(["classify", "--workload", "bivalent", "--n", "6"])
        out = capsys.readouterr().out
        assert "class  : B" in out
        assert "safe   : 0" in out


class TestHunt:
    def test_hunt_naive_leader_finds_trap(self, capsys):
        code = main(
            [
                "hunt",
                "--algorithm", "naive-leader",
                "--workload", "unsafe-ray",
                "--n", "8",
                "--rounds", "10",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "reached B : True" in out

    def test_hunt_wfg_survives(self, capsys):
        code = main(["hunt", "--n", "6", "--rounds", "15"])
        out = capsys.readouterr().out
        assert code == 0
        assert "reached B : False" in out


class TestRender:
    def test_render_run(self, capsys, tmp_path):
        target = str(tmp_path / "run.svg")
        code = main(
            ["render", target, "--workload", "asymmetric", "--n", "6",
             "--seed", "1"]
        )
        assert code == 0
        with open(target) as handle:
            assert handle.read().startswith("<svg")
        assert "gathered" in capsys.readouterr().out

    def test_render_snapshot(self, capsys, tmp_path):
        target = str(tmp_path / "snap.svg")
        code = main(
            ["render", target, "--workload", "regular-polygon", "--n", "6",
             "--snapshot"]
        )
        assert code == 0
        with open(target) as handle:
            assert "Weber point" in handle.read()


class TestSaveTrace:
    def test_trace_json_written_and_loadable(self, capsys, tmp_path):
        from repro.sim import Trace

        target = str(tmp_path / "trace.json")
        code = main(
            ["simulate", "--workload", "multiple", "--n", "6",
             "--seed", "1", "--save-trace", target]
        )
        assert code == 0
        assert "trace saved" in capsys.readouterr().out
        with open(target) as handle:
            trace = Trace.from_json(handle.read())
        assert len(trace) > 0
