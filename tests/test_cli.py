"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.workload == "random"
        assert args.algorithm == "wait-free-gather"

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--workload", "nope"])


class TestSimulate:
    def test_successful_run_exit_zero(self, capsys):
        code = main(
            ["simulate", "--workload", "asymmetric", "--n", "6", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict    : gathered" in out

    def test_crash_tolerant_run(self, capsys):
        code = main(
            [
                "simulate",
                "--workload", "random",
                "--n", "6",
                "--f", "5",
                "--crashes", "random",
                "--seed", "2",
            ]
        )
        assert code == 0
        assert "gathered" in capsys.readouterr().out

    def test_bivalent_reports_impossible(self, capsys):
        code = main(
            ["simulate", "--workload", "bivalent", "--n", "6", "--seed", "0"]
        )
        out = capsys.readouterr().out
        assert code == 0  # impossibility correctly detected is a success
        assert "impossible" in out

    def test_trace_flag_prints_rounds(self, capsys):
        main(
            [
                "simulate",
                "--workload", "multiple",
                "--n", "6",
                "--seed", "1",
                "--trace",
            ]
        )
        out = capsys.readouterr().out
        assert "[M]" in out


class TestClassify:
    def test_polygon_reports_qr(self, capsys):
        code = main(
            ["classify", "--workload", "regular-polygon", "--n", "6",
             "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "class  : QR" in out
        assert "qreg   : 6" in out

    def test_bivalent_reports_b(self, capsys):
        main(["classify", "--workload", "bivalent", "--n", "6"])
        out = capsys.readouterr().out
        assert "class  : B" in out
        assert "safe   : 0" in out


class TestHunt:
    def test_hunt_naive_leader_finds_trap(self, capsys):
        code = main(
            [
                "hunt",
                "--algorithm", "naive-leader",
                "--workload", "unsafe-ray",
                "--n", "8",
                "--rounds", "10",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "reached B : True" in out

    def test_hunt_wfg_survives(self, capsys):
        code = main(["hunt", "--n", "6", "--rounds", "15"])
        out = capsys.readouterr().out
        assert code == 0
        assert "reached B : False" in out


class TestRender:
    def test_render_run(self, capsys, tmp_path):
        target = str(tmp_path / "run.svg")
        code = main(
            ["render", target, "--workload", "asymmetric", "--n", "6",
             "--seed", "1"]
        )
        assert code == 0
        with open(target) as handle:
            assert handle.read().startswith("<svg")
        assert "gathered" in capsys.readouterr().out

    def test_render_snapshot(self, capsys, tmp_path):
        target = str(tmp_path / "snap.svg")
        code = main(
            ["render", target, "--workload", "regular-polygon", "--n", "6",
             "--snapshot"]
        )
        assert code == 0
        with open(target) as handle:
            assert "Weber point" in handle.read()


class TestSaveTrace:
    def test_trace_json_written_and_loadable(self, capsys, tmp_path):
        from repro.sim import Trace

        target = str(tmp_path / "trace.json")
        code = main(
            ["simulate", "--workload", "multiple", "--n", "6",
             "--seed", "1", "--save-trace", target]
        )
        assert code == 0
        assert "trace saved" in capsys.readouterr().out
        with open(target) as handle:
            trace = Trace.from_json(handle.read())
        assert len(trace) > 0

    def test_saved_trace_carries_full_meta(self, tmp_path):
        from repro.sim import Trace

        target = str(tmp_path / "trace.json")
        main(
            ["simulate", "--workload", "asymmetric", "--n", "6",
             "--f", "1", "--seed", "1", "--save-trace", target]
        )
        with open(target) as handle:
            trace = Trace.from_json(handle.read())
        assert trace.meta is not None
        assert trace.meta.scenario["workload"] == "asymmetric"
        assert trace.meta.seed == 1
        assert trace.meta.engine_seed == 1  # simulate passes the raw seed


class TestCheck:
    def _save(self, tmp_path, name="t.json", seed="1"):
        target = str(tmp_path / name)
        main(
            ["simulate", "--workload", "asymmetric", "--n", "6",
             "--f", "1", "--seed", seed, "--save-trace", target]
        )
        return target

    def test_replay_ok_exit_zero(self, capsys, tmp_path):
        target = self._save(tmp_path)
        code = main(["check", "--replay", target])
        out = capsys.readouterr().out
        assert code == 0
        assert "bit-identical" in out
        assert "check ok" in out

    def test_replay_both_backends(self, capsys, tmp_path):
        target = self._save(tmp_path)
        code = main(["check", "--replay", target, "--backend", "both"])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend 'python'" in out
        assert "backend 'numpy'" in out

    def test_tampered_trace_exit_one(self, capsys, tmp_path):
        import json

        target = self._save(tmp_path)
        with open(target) as handle:
            data = json.load(handle)
        record = data["records"][0]
        rid = next(iter(record["destinations"]))
        record["destinations"][rid][0] += 1.0
        with open(target, "w") as handle:
            json.dump(data, handle)
        code = main(["check", "--replay", target])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out
        assert "reproduce:" in out

    def test_invariants_mode(self, capsys, tmp_path):
        target = self._save(tmp_path)
        code = main(["check", "--invariants", target])
        out = capsys.readouterr().out
        assert code == 0
        assert "invariants ok" in out

    def test_corpus_mode(self, capsys, tmp_path):
        self._save(tmp_path, "a.json", seed="1")
        self._save(tmp_path, "b.json", seed="2")
        code = main(["check", "--corpus", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("replay ok") == 2
        assert out.count("invariants ok") == 2

    def test_empty_corpus_is_usage_error(self, capsys, tmp_path):
        assert main(["check", "--corpus", str(tmp_path)]) == 2

    def test_no_mode_is_usage_error(self, capsys):
        assert main(["check"]) == 2

    def test_emit_trace_internal_mode(self, capsys, tmp_path):
        import json

        from repro.experiments.runner import Scenario
        from repro.sim.replay import load_trace

        scenario_path = str(tmp_path / "scenario.json")
        out_path = str(tmp_path / "out.json")
        scenario = Scenario(workload="asymmetric", n=6, f=1)
        with open(scenario_path, "w") as handle:
            json.dump(scenario.to_dict(), handle)
        code = main(
            ["check", "--emit-trace", scenario_path, "--seed", "4",
             "--out", out_path]
        )
        assert code == 0
        trace = load_trace(out_path)
        assert trace.meta.seed == 4
        assert Scenario.from_dict(trace.meta.scenario) == scenario
