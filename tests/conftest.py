"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.geometry import DEFAULT_TOLERANCE, Point

# Deterministic, CI-friendly hypothesis profile: enough examples to be
# meaningful, no deadline flakiness from the slower geometric properties.
settings.register_profile(
    "repro",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture
def tol():
    return DEFAULT_TOLERANCE


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def unit_square():
    return [Point(0.0, 0.0), Point(1.0, 0.0), Point(1.0, 1.0), Point(0.0, 1.0)]


def regular_ngon(k: int, center: Point = Point(0.0, 0.0), radius: float = 1.0,
                 phase: float = 0.0):
    """Helper shared by several test modules."""
    return [
        Point(
            center.x + radius * math.cos(phase + 2.0 * math.pi * i / k),
            center.y + radius * math.sin(phase + 2.0 * math.pi * i / k),
        )
        for i in range(k)
    ]
