"""Regression tests — every bug found while building the reproduction.

Each test documents the failure mode it pins, so a future refactor that
reintroduces it fails with an explanation rather than a mystery.
"""

import math

import pytest

from repro.algorithms import WaitFreeGather
from repro.core import (
    ConfigClass,
    Configuration,
    classify,
    quasi_regularity,
)
from repro.geometry import Point, linear_weber_interval
from repro.sim import RandomCrashes, RandomStop, RandomSubset, Simulation
from repro.workloads import generate


class TestNearCenterAngularPoisoning:
    """A robot stopping just short of the Weber point used to poison the
    string of angles: its ray direction, known only to eps/distance,
    failed the exact angular-periodicity band and flipped a QR
    configuration to A mid-run (an illegal transition under Lemma 5.5).
    Fixed by distance-aware angular resolution in ray_structure."""

    def test_qr_with_robot_near_center_stays_qr(self):
        # Perfect square + one robot 1e-6 from the center, on the exact
        # ray towards a corner but with 1e-12 of lateral float noise —
        # the shape the engine produces after an interrupted move.
        ring = [Point(2, 0), Point(0, 2), Point(-2, 0), Point(0, -2)]
        near = Point(1e-6, 1e-12)
        config = Configuration(ring + [near, Point(-1e-6, -1e-12)])
        qr = quasi_regularity(config)
        assert qr.is_quasi_regular, "near-center noise must be absorbed"

    def test_full_run_never_makes_illegal_qr_transition(self):
        from repro.analysis import InvariantMonitor

        monitor = InvariantMonitor()
        sim = Simulation(
            WaitFreeGather(),
            generate("biangular", 8, 2),
            scheduler=RandomSubset(0.5),
            crash_adversary=RandomCrashes(f=7, rate=0.25),
            movement=RandomStop(0.05),
            seed=8,
            max_rounds=10_000,
        )
        sim.add_observer(monitor)  # raises on any illegal transition
        assert sim.run().gathered


class TestL1WGeneratorEvenN:
    """linear_unique_weber looped forever for even n: forcing the two
    middle order statistics to coincide creates a multiplicity-2 point
    that is the unique maximum, reclassifying the output as M.  Fixed
    with the (k, 2, k) block pattern; n = 4 is provably impossible."""

    def test_even_n_terminates_and_is_l1w(self):
        for n in (6, 8, 10, 12):
            config = Configuration(generate("linear-unique", n, 1))
            assert classify(config) is ConfigClass.LINEAR_UNIQUE_WEBER, n

    def test_n4_rejected_not_looped(self):
        from repro.workloads import linear_unique_weber

        with pytest.raises(ValueError):
            linear_unique_weber(4)


class TestQrOccupiedCenterGenerator:
    """The original occupied-center generator stacked >= 2 wildcards on
    the center, which made the center the unique maximum multiplicity —
    class M — and the class-targeted retry loop never terminated."""

    def test_center_multiplicity_is_one(self):
        for n in (6, 9, 10, 13):
            config = Configuration(generate("qr-occupied-center", n, 0))
            qr = quasi_regularity(config)
            assert qr.is_quasi_regular
            assert config.mult(qr.center) == 1
            assert classify(config) is ConfigClass.QUASI_REGULAR


class TestLinearMedianCanonicalOrder:
    """linear_weber_interval returned its endpoints in anchor order,
    which depended on the input order of the points; hypothesis found
    ts=[1.0, 0.0] returning (1, 0) instead of (0, 1)."""

    def test_interval_is_lexicographically_ordered(self):
        lo, hi = linear_weber_interval([Point(1, 0), Point(0, 0)])
        assert lo <= hi
        lo2, hi2 = linear_weber_interval([Point(0, 0), Point(1, 0)])
        assert (lo, hi) == (lo2, hi2)


class TestLinearClassificationToleranceConsistency:
    """Configuration.is_linear (support, farthest-anchor band) could
    disagree with the strict collinearity re-check inside the geometry
    median helper on eps-sagged lines produced mid-run by baselines,
    raising ValueError out of classify().  The core now projects onto
    the support line instead of re-checking."""

    def test_sagged_line_classifies_without_error(self):
        sag = 0.5e-9  # within eps_dist of the line, off it bitwise
        pts = [
            Point(0.0, 0.0),
            Point(1.0, sag),
            Point(2.0, -sag),
            Point(5.0, sag / 2),
        ]
        config = Configuration(pts)
        assert config.is_linear()
        cls = classify(config)  # must not raise
        assert cls in (
            ConfigClass.LINEAR_UNIQUE_WEBER,
            ConfigClass.LINEAR_MANY_WEBER,
        )


class TestFermatTriangleIsQuasiRegular:
    """Not a bug but a surprise worth pinning: any triangle whose Fermat
    point is interior is regular per Definition 5 (three rays at exactly
    120 degrees), so 3-robot 'generic' configurations classify as QR,
    not A.  An obtuse (>= 120 degree) triangle has its Weber point on
    the obtuse vertex and is genuinely A."""

    def test_acute_triangle_is_qr(self):
        config = Configuration([Point(-1, 0), Point(1, 0), Point(0, 3)])
        assert classify(config) is ConfigClass.QUASI_REGULAR

    def test_very_obtuse_triangle_is_asymmetric(self):
        config = Configuration([Point(0, 0), Point(10, 0.5), Point(-10, 0.5)])
        assert classify(config) is ConfigClass.ASYMMETRIC


class TestWildcardAbsorbsOneNudge:
    """E7b initially looked like it had detector false positives: a
    tangential nudge of the *deficient* ray of an occupied-center QR
    configuration leaves it genuinely quasi-regular, because the center
    wildcard can complete whichever slot is empty (Lemma 3.4).  Two
    nudges exceed one wildcard and must break detection."""

    def test_single_nudge_of_unpaired_ray_keeps_qr(self):
        # Center robot + two opposite pairs + one unpaired ray.
        import math as m

        center = Point(0, 0)
        pts = [center]
        for a in (0.4, 1.3):
            pts.append(Point(2 * m.cos(a), 2 * m.sin(a)))
            pts.append(Point(2 * m.cos(a + m.pi), 2 * m.sin(a + m.pi)))
        unpaired_angle = 2.4
        pts.append(Point(2 * m.cos(unpaired_angle), 2 * m.sin(unpaired_angle)))
        assert quasi_regularity(Configuration(pts)).is_quasi_regular
        # Rotate ONLY the unpaired ray: still quasi-regular.
        pts[-1] = Point(2 * m.cos(2.9), 2 * m.sin(2.9))
        assert quasi_regularity(Configuration(pts)).is_quasi_regular
        # Rotate a paired ray as well: two broken slots, one wildcard.
        pts[1] = Point(2 * m.cos(0.9), 2 * m.sin(0.9))
        assert not quasi_regularity(Configuration(pts)).is_quasi_regular


class TestLocateSpansWideClusters:
    """Configuration.locate compared points only against cluster
    *representatives*; union-find chains can span more than eps end to
    end, so a robot's own exact position could fail to locate inside
    its own cluster (first seen as a NotAPositionError under sensor
    noise, where merge tolerances are large).  locate now resolves
    exact input points through the merge map."""

    def test_chained_cluster_member_locates(self):
        from dataclasses import replace

        from repro.geometry import DEFAULT_TOLERANCE

        tol = replace(DEFAULT_TOLERANCE, eps_dist=1.0)
        # 0 -- 0.9 -- 1.8 -- 2.7: chained into one cluster of diameter
        # 2.7 > eps; the far member must still locate.
        pts = [Point(0.0, 0.0), Point(0.9, 0.0), Point(1.8, 0.0), Point(2.7, 0.0)]
        config = Configuration(pts, tol)
        assert len(config.support) == 1
        rep = config.support[0]
        for p in pts:
            assert config.locate(p) == rep


class TestMultipleCenterCoincidentViewPoints:
    """view_table assumed at most one support point coincides with the
    SEC center; at sensor-limited resolutions several can, and the
    missing table entries crashed the election with a KeyError."""

    def test_views_total_even_with_crowded_center(self):
        from dataclasses import replace

        from repro.core import view_table
        from repro.geometry import DEFAULT_TOLERANCE

        tol = replace(DEFAULT_TOLERANCE, eps_dist=0.5)
        # Two unmerged points near the SEC center of a surrounding ring.
        pts = [
            Point(2.0, 0.0), Point(-2.0, 0.0), Point(0.0, 2.0), Point(0.0, -2.0),
            Point(0.3, 0.0), Point(-0.3, 0.0),
        ]
        config = Configuration(pts, tol)
        table = view_table(config)
        assert set(table) == set(config.support)

    def test_degenerate_blob_views_do_not_crash(self):
        from dataclasses import replace

        from repro.core import view_table
        from repro.geometry import DEFAULT_TOLERANCE

        tol = replace(DEFAULT_TOLERANCE, eps_dist=0.5)
        # Everything within resolution of the center but not merged.
        pts = [Point(0.0, 0.0), Point(0.6, 0.0), Point(0.0, 0.6)]
        config = Configuration(pts, tol)
        table = view_table(config)
        assert set(table) == set(config.support)


def _observe_worker_backend(_item):
    """Module-level so the process pool can pickle it."""
    import os

    from repro.geometry import kernels

    return (kernels.get_backend(), os.environ.get("REPRO_BACKEND"))


class TestTraceToleranceRoundTrip:
    """Trace JSON did not record the run's Tolerance, so archived
    configurations were rebuilt with DEFAULT_TOLERANCE on load.  For a
    run recorded under a coarser tolerance (sensor-noise experiments
    snap with large eps) the offline invariant checkers then quantized
    space differently from the live run — ``locate``, ``close_to`` and
    the angular bands all read ``config.tol`` — so verification of the
    archive could disagree with verification of the execution it
    archived.  Schema v2 carries the tolerance in its meta block and
    ``from_json`` rebuilds every configuration with it."""

    def test_recorded_tolerance_reaches_rebuilt_configs(self):
        import json
        from dataclasses import replace

        from repro.core import ConfigClass, Configuration
        from repro.geometry import DEFAULT_TOLERANCE
        from repro.sim import RoundRecord, Trace, TraceMeta

        tol = replace(DEFAULT_TOLERANCE, eps_dist=0.5)
        pts = [Point(0.0, 0.0), Point(2.0, 0.0), Point(4.0, 0.0)]
        config = Configuration(pts, tol)
        record = RoundRecord(
            round_index=0,
            config_before=config,
            config_class=ConfigClass.ASYMMETRIC,
            active=(0, 1, 2),
            crashed_now=(),
            destinations={},
            config_after=config,
            moved=(),
        )
        meta = TraceMeta.for_run(
            scenario=None, seed=0, engine_seed=0, tol=tol
        )
        trace = Trace(records=[record], meta=meta)

        restored = Trace.from_json(trace.to_json())
        assert restored.tol() == tol
        rebuilt = restored.records[0].config_before
        assert rebuilt.tol == tol
        # Observable difference: a probe 0.3 away locates inside the
        # recorded quantum but not inside the default one.
        assert rebuilt.locate(Point(0.3, 0.0)) is not None

        # Pre-fix behaviour: strip the tolerance from the meta block and
        # the same archive quantizes space differently on load.
        data = json.loads(trace.to_json())
        data["meta"]["tolerance"] = None
        degraded = Trace.from_json(json.dumps(data))
        degraded_config = degraded.records[0].config_before
        assert degraded_config.tol == DEFAULT_TOLERANCE
        assert degraded_config.locate(Point(0.3, 0.0)) is None


class TestWorkerBackendPinning:
    """The process-pool initializer pinned the backend active at *pool
    creation*; a backend switch between batches (the differential
    checker does exactly that) left long-lived workers computing on the
    stale backend, and the choice was never exported to REPRO_BACKEND so
    grandchild processes resolved the wrong default too.  parallel_map
    now re-pins state + environment around every worker-side call."""

    def test_stale_pool_workers_follow_backend_switch(self):
        pytest.importorskip("numpy")
        from repro.experiments.runner import executor, parallel_map
        from repro.geometry import kernels

        original = kernels.get_backend()
        try:
            kernels.set_backend("python")
            with executor(2) as pool:
                first = parallel_map(
                    _observe_worker_backend, [0, 1], pool=pool
                )
                assert all(b == "python" for b, _ in first)
                kernels.set_backend("numpy")  # pool already exists
                second = parallel_map(
                    _observe_worker_backend, [0, 1], pool=pool
                )
                assert all(b == "numpy" for b, _ in second)
                # Exported for grandchildren, not just process state.
                assert all(env == "numpy" for _, env in second)
        finally:
            kernels.set_backend(original)


class TestNumpyFallbackIsLoudAndNarrow:
    """The numpy import guard caught every Exception, so a *broken*
    NumPy install (SystemError, bad ABI) masqueraded as 'not installed'
    and the sweep silently computed on the pure-Python backend.  The
    guard now catches only ImportError, and the numpy->python
    degradation warns once instead of never."""

    def test_missing_numpy_warns_once_and_degrades(self, monkeypatch):
        import warnings

        from repro.geometry import kernels

        original = kernels.get_backend()
        monkeypatch.setattr(kernels, "_np", None)
        monkeypatch.setattr(kernels, "_fallback_warned", False)
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                kernels.set_backend("numpy")
                assert kernels.get_backend() == "python"
                kernels.set_backend("numpy")  # second request: no repeat
            runtime = [
                w for w in caught if issubclass(w.category, RuntimeWarning)
            ]
            assert len(runtime) == 1
            assert "falling back" in str(runtime[0].message)
        finally:
            monkeypatch.undo()
            kernels.set_backend(original)

    def test_import_guard_is_importerror_only(self):
        import ast
        import inspect

        from repro.geometry import kernels

        tree = ast.parse(inspect.getsource(kernels))
        guards = [
            handler
            for node in ast.walk(tree)
            if isinstance(node, ast.Try)
            for handler in node.handlers
        ]
        numpy_guards = [
            h
            for h in guards
            if isinstance(h.type, ast.Name) and h.type.id == "ImportError"
        ]
        assert numpy_guards, "numpy import must be guarded by ImportError"
        assert not any(
            isinstance(h.type, ast.Name) and h.type.id == "Exception"
            for h in guards
        ), "a bare `except Exception` import guard hides broken installs"


class TestComponentRngDecoupling:
    """All stochastic components (crash adversary, scheduler, movement,
    sensor noise) drew from ONE shared engine RNG, so the crash schedule
    changed whenever the movement model consumed a different number of
    draws — comparing 'same faults, different movement' compared
    different fault patterns.  Each component now gets its own
    deterministic substream derived from the engine seed."""

    @staticmethod
    def _crash_events(movement, seed=11):
        from repro.sim import RigidMovement  # noqa: F401 (doc import)

        sim = Simulation(
            WaitFreeGather(),
            generate("random", 7, 4),
            scheduler=RandomSubset(0.5),
            crash_adversary=RandomCrashes(f=3, rate=0.25),
            movement=movement,
            seed=seed,
            max_rounds=500,
            record_trace=True,
        )
        result = sim.run()
        events = [
            (r.round_index, r.crashed_now)
            for r in result.trace
            if r.crashed_now
        ]
        return events, result.rounds

    def test_crash_schedule_independent_of_movement_model(self):
        from repro.sim import RigidMovement

        events_rigid, rounds_rigid = self._crash_events(RigidMovement())
        events_stop, rounds_stop = self._crash_events(RandomStop(0.05))
        # The runs end at different rounds (movement affects progress),
        # but over the rounds both executions lived through, the crash
        # adversary must have made identical decisions.
        horizon = min(rounds_rigid, rounds_stop)
        prefix_rigid = [e for e in events_rigid if e[0] < horizon]
        prefix_stop = [e for e in events_stop if e[0] < horizon]
        assert prefix_rigid == prefix_stop

    def test_component_streams_are_deterministic_and_distinct(self):
        import random

        from repro.sim.engine import component_rng

        a = component_rng(5, "crash")
        b = component_rng(5, "crash")
        assert [a.random() for _ in range(4)] == [
            b.random() for _ in range(4)
        ]
        crash = component_rng(5, "crash").random()
        sched = component_rng(5, "sched").random()
        move = component_rng(5, "move").random()
        assert len({crash, sched, move}) == 3
        # Stable construction, not hash()-of-the-moment: string seeding
        # goes through SHA-512, immune to PYTHONHASHSEED.
        assert (
            component_rng(5, "crash").random()
            == random.Random("repro:5:crash").random()
        )


class TestNoisyObserverBivalentRefusal:
    """A sensor-noise observer can transiently see a bivalent-looking
    blob; the engine originally treated the algorithm's refusal as
    global impossibility and aborted perfectly solvable runs."""

    def test_noisy_run_survives_transient_bivalent_views(self):
        from repro.algorithms import WaitFreeGather
        from repro.sim import RandomSubset, Simulation
        from repro.workloads import generate

        result = Simulation(
            WaitFreeGather(),
            generate("near-bivalent", 8, 2),
            scheduler=RandomSubset(0.6),
            sensor_noise=0.05,
            seed=4,
            max_rounds=5_000,
        ).run()
        assert result.gathered, result.verdict
