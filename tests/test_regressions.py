"""Regression tests — every bug found while building the reproduction.

Each test documents the failure mode it pins, so a future refactor that
reintroduces it fails with an explanation rather than a mystery.
"""

import math

import pytest

from repro.algorithms import WaitFreeGather
from repro.core import (
    ConfigClass,
    Configuration,
    classify,
    quasi_regularity,
)
from repro.geometry import Point, linear_weber_interval
from repro.sim import RandomCrashes, RandomStop, RandomSubset, Simulation
from repro.workloads import generate


class TestNearCenterAngularPoisoning:
    """A robot stopping just short of the Weber point used to poison the
    string of angles: its ray direction, known only to eps/distance,
    failed the exact angular-periodicity band and flipped a QR
    configuration to A mid-run (an illegal transition under Lemma 5.5).
    Fixed by distance-aware angular resolution in ray_structure."""

    def test_qr_with_robot_near_center_stays_qr(self):
        # Perfect square + one robot 1e-6 from the center, on the exact
        # ray towards a corner but with 1e-12 of lateral float noise —
        # the shape the engine produces after an interrupted move.
        ring = [Point(2, 0), Point(0, 2), Point(-2, 0), Point(0, -2)]
        near = Point(1e-6, 1e-12)
        config = Configuration(ring + [near, Point(-1e-6, -1e-12)])
        qr = quasi_regularity(config)
        assert qr.is_quasi_regular, "near-center noise must be absorbed"

    def test_full_run_never_makes_illegal_qr_transition(self):
        from repro.analysis import InvariantMonitor

        monitor = InvariantMonitor()
        sim = Simulation(
            WaitFreeGather(),
            generate("biangular", 8, 2),
            scheduler=RandomSubset(0.5),
            crash_adversary=RandomCrashes(f=7, rate=0.25),
            movement=RandomStop(0.05),
            seed=8,
            max_rounds=10_000,
        )
        sim.add_observer(monitor)  # raises on any illegal transition
        assert sim.run().gathered


class TestL1WGeneratorEvenN:
    """linear_unique_weber looped forever for even n: forcing the two
    middle order statistics to coincide creates a multiplicity-2 point
    that is the unique maximum, reclassifying the output as M.  Fixed
    with the (k, 2, k) block pattern; n = 4 is provably impossible."""

    def test_even_n_terminates_and_is_l1w(self):
        for n in (6, 8, 10, 12):
            config = Configuration(generate("linear-unique", n, 1))
            assert classify(config) is ConfigClass.LINEAR_UNIQUE_WEBER, n

    def test_n4_rejected_not_looped(self):
        from repro.workloads import linear_unique_weber

        with pytest.raises(ValueError):
            linear_unique_weber(4)


class TestQrOccupiedCenterGenerator:
    """The original occupied-center generator stacked >= 2 wildcards on
    the center, which made the center the unique maximum multiplicity —
    class M — and the class-targeted retry loop never terminated."""

    def test_center_multiplicity_is_one(self):
        for n in (6, 9, 10, 13):
            config = Configuration(generate("qr-occupied-center", n, 0))
            qr = quasi_regularity(config)
            assert qr.is_quasi_regular
            assert config.mult(qr.center) == 1
            assert classify(config) is ConfigClass.QUASI_REGULAR


class TestLinearMedianCanonicalOrder:
    """linear_weber_interval returned its endpoints in anchor order,
    which depended on the input order of the points; hypothesis found
    ts=[1.0, 0.0] returning (1, 0) instead of (0, 1)."""

    def test_interval_is_lexicographically_ordered(self):
        lo, hi = linear_weber_interval([Point(1, 0), Point(0, 0)])
        assert lo <= hi
        lo2, hi2 = linear_weber_interval([Point(0, 0), Point(1, 0)])
        assert (lo, hi) == (lo2, hi2)


class TestLinearClassificationToleranceConsistency:
    """Configuration.is_linear (support, farthest-anchor band) could
    disagree with the strict collinearity re-check inside the geometry
    median helper on eps-sagged lines produced mid-run by baselines,
    raising ValueError out of classify().  The core now projects onto
    the support line instead of re-checking."""

    def test_sagged_line_classifies_without_error(self):
        sag = 0.5e-9  # within eps_dist of the line, off it bitwise
        pts = [
            Point(0.0, 0.0),
            Point(1.0, sag),
            Point(2.0, -sag),
            Point(5.0, sag / 2),
        ]
        config = Configuration(pts)
        assert config.is_linear()
        cls = classify(config)  # must not raise
        assert cls in (
            ConfigClass.LINEAR_UNIQUE_WEBER,
            ConfigClass.LINEAR_MANY_WEBER,
        )


class TestFermatTriangleIsQuasiRegular:
    """Not a bug but a surprise worth pinning: any triangle whose Fermat
    point is interior is regular per Definition 5 (three rays at exactly
    120 degrees), so 3-robot 'generic' configurations classify as QR,
    not A.  An obtuse (>= 120 degree) triangle has its Weber point on
    the obtuse vertex and is genuinely A."""

    def test_acute_triangle_is_qr(self):
        config = Configuration([Point(-1, 0), Point(1, 0), Point(0, 3)])
        assert classify(config) is ConfigClass.QUASI_REGULAR

    def test_very_obtuse_triangle_is_asymmetric(self):
        config = Configuration([Point(0, 0), Point(10, 0.5), Point(-10, 0.5)])
        assert classify(config) is ConfigClass.ASYMMETRIC


class TestWildcardAbsorbsOneNudge:
    """E7b initially looked like it had detector false positives: a
    tangential nudge of the *deficient* ray of an occupied-center QR
    configuration leaves it genuinely quasi-regular, because the center
    wildcard can complete whichever slot is empty (Lemma 3.4).  Two
    nudges exceed one wildcard and must break detection."""

    def test_single_nudge_of_unpaired_ray_keeps_qr(self):
        # Center robot + two opposite pairs + one unpaired ray.
        import math as m

        center = Point(0, 0)
        pts = [center]
        for a in (0.4, 1.3):
            pts.append(Point(2 * m.cos(a), 2 * m.sin(a)))
            pts.append(Point(2 * m.cos(a + m.pi), 2 * m.sin(a + m.pi)))
        unpaired_angle = 2.4
        pts.append(Point(2 * m.cos(unpaired_angle), 2 * m.sin(unpaired_angle)))
        assert quasi_regularity(Configuration(pts)).is_quasi_regular
        # Rotate ONLY the unpaired ray: still quasi-regular.
        pts[-1] = Point(2 * m.cos(2.9), 2 * m.sin(2.9))
        assert quasi_regularity(Configuration(pts)).is_quasi_regular
        # Rotate a paired ray as well: two broken slots, one wildcard.
        pts[1] = Point(2 * m.cos(0.9), 2 * m.sin(0.9))
        assert not quasi_regularity(Configuration(pts)).is_quasi_regular


class TestLocateSpansWideClusters:
    """Configuration.locate compared points only against cluster
    *representatives*; union-find chains can span more than eps end to
    end, so a robot's own exact position could fail to locate inside
    its own cluster (first seen as a NotAPositionError under sensor
    noise, where merge tolerances are large).  locate now resolves
    exact input points through the merge map."""

    def test_chained_cluster_member_locates(self):
        from dataclasses import replace

        from repro.geometry import DEFAULT_TOLERANCE

        tol = replace(DEFAULT_TOLERANCE, eps_dist=1.0)
        # 0 -- 0.9 -- 1.8 -- 2.7: chained into one cluster of diameter
        # 2.7 > eps; the far member must still locate.
        pts = [Point(0.0, 0.0), Point(0.9, 0.0), Point(1.8, 0.0), Point(2.7, 0.0)]
        config = Configuration(pts, tol)
        assert len(config.support) == 1
        rep = config.support[0]
        for p in pts:
            assert config.locate(p) == rep


class TestMultipleCenterCoincidentViewPoints:
    """view_table assumed at most one support point coincides with the
    SEC center; at sensor-limited resolutions several can, and the
    missing table entries crashed the election with a KeyError."""

    def test_views_total_even_with_crowded_center(self):
        from dataclasses import replace

        from repro.core import view_table
        from repro.geometry import DEFAULT_TOLERANCE

        tol = replace(DEFAULT_TOLERANCE, eps_dist=0.5)
        # Two unmerged points near the SEC center of a surrounding ring.
        pts = [
            Point(2.0, 0.0), Point(-2.0, 0.0), Point(0.0, 2.0), Point(0.0, -2.0),
            Point(0.3, 0.0), Point(-0.3, 0.0),
        ]
        config = Configuration(pts, tol)
        table = view_table(config)
        assert set(table) == set(config.support)

    def test_degenerate_blob_views_do_not_crash(self):
        from dataclasses import replace

        from repro.core import view_table
        from repro.geometry import DEFAULT_TOLERANCE

        tol = replace(DEFAULT_TOLERANCE, eps_dist=0.5)
        # Everything within resolution of the center but not merged.
        pts = [Point(0.0, 0.0), Point(0.6, 0.0), Point(0.0, 0.6)]
        config = Configuration(pts, tol)
        table = view_table(config)
        assert set(table) == set(config.support)


class TestNoisyObserverBivalentRefusal:
    """A sensor-noise observer can transiently see a bivalent-looking
    blob; the engine originally treated the algorithm's refusal as
    global impossibility and aborted perfectly solvable runs."""

    def test_noisy_run_survives_transient_bivalent_views(self):
        from repro.algorithms import WaitFreeGather
        from repro.sim import RandomSubset, Simulation
        from repro.workloads import generate

        result = Simulation(
            WaitFreeGather(),
            generate("near-bivalent", 8, 2),
            scheduler=RandomSubset(0.6),
            sensor_noise=0.05,
            seed=4,
            max_rounds=5_000,
        ).run()
        assert result.gathered, result.verdict
