"""End-to-end daemon tests over a real socket (ephemeral port).

Covers the acceptance properties of the serving layer: repeated
identical requests are cache hits with byte-identical bodies and
recorded counters, ``--no-cache`` and per-request opt-out recompute,
the sweep stream is deterministic and shares cache entries with
``/run``, failures arrive as structured taxonomy-mapped JSON, and
``/metrics`` exposes per-endpoint latency histograms plus the sweep
aggregate.
"""

import json

from repro.resilience import RunPolicy

from .client import serving

SCENARIO = {
    "workload": "random",
    "n": 6,
    "f": 1,
    "crashes": "random",
    "max_rounds": 5000,
}


class TestRunEndpoint:
    def test_repeat_run_is_byte_identical_cache_hit(self):
        with serving() as client:
            status, headers, cold = client.run(SCENARIO, seed=1)
            assert status == 200
            assert headers["X-Repro-Cache"] == "miss"

            hits_before = client.server.store.counters()["hits"]
            status, headers, warm = client.run(SCENARIO, seed=1)
            assert status == 200
            assert headers["X-Repro-Cache"] == "hit"
            assert warm == cold
            assert client.server.store.counters()["hits"] == hits_before + 1

    def test_run_body_shape(self):
        with serving() as client:
            status, _, raw = client.run(SCENARIO, seed=2)
            assert status == 200
            body = json.loads(raw)
            assert body["schema"] == "repro-serve-v1"
            assert body["kind"] == "run"
            assert body["seed"] == 2
            assert len(body["key"]) == 64
            assert body["scenario"]["workload"] == "random"
            assert body["context"]["engine"] == "atom"
            assert body["result"]["verdict"]
            assert body["result"]["rounds"] >= 0

    def test_per_request_cache_opt_out(self):
        with serving() as client:
            client.run(SCENARIO, seed=1)
            status, headers, body = client.run(SCENARIO, seed=1, cache=False)
            assert status == 200
            assert headers["X-Repro-Cache"] == "bypass"
            # Recomputed, yet byte-identical: determinism at work.
            _, _, cached = client.run(SCENARIO, seed=1)
            assert body == cached

    def test_server_wide_no_cache(self):
        with serving(cache_enabled=False) as client:
            _, headers, _ = client.run(SCENARIO, seed=1)
            assert headers["X-Repro-Cache"] == "bypass"
            _, headers, _ = client.run(SCENARIO, seed=1)
            assert headers["X-Repro-Cache"] == "bypass"
            assert client.server.store.counters()["stores"] == 0

    def test_different_seed_misses(self):
        with serving() as client:
            client.run(SCENARIO, seed=1)
            _, headers, _ = client.run(SCENARIO, seed=2)
            assert headers["X-Repro-Cache"] == "miss"


class TestSweepEndpoint:
    def test_sweep_streams_per_seed_lines_plus_summary(self):
        with serving() as client:
            status, headers, raw = client.sweep(
                SCENARIO, seed_start=0, seed_count=3
            )
            assert status == 200
            assert headers["Transfer-Encoding"] == "chunked"
            lines = [json.loads(l) for l in raw.decode().splitlines()]
            assert [l["kind"] for l in lines] == [
                "run", "run", "run", "sweep_summary",
            ]
            assert [l["seed"] for l in lines[:3]] == [0, 1, 2]
            summary = lines[-1]
            assert summary["seeds"] == 3
            assert sum(summary["verdicts"].values()) == 3

    def test_repeated_sweep_is_byte_identical(self):
        with serving() as client:
            _, _, first = client.sweep(SCENARIO, seed_start=0, seed_count=3)
            misses = client.server.store.counters()["misses"]
            _, _, second = client.sweep(SCENARIO, seed_start=0, seed_count=3)
            assert second == first
            # Second pass added no misses: fully served from cache.
            assert client.server.store.counters()["misses"] == misses

    def test_sweep_and_run_share_cache_entries(self):
        with serving() as client:
            client.sweep(SCENARIO, seed_start=0, seed_count=2)
            _, headers, _ = client.run(SCENARIO, seed=1)
            assert headers["X-Repro-Cache"] == "hit"


class TestErrorMapping:
    def test_malformed_json_is_400(self):
        with serving() as client:
            status, _, raw = client.request("POST", "/run", None)
            body = json.loads(raw)
            assert status == 400
            assert body["kind"] == "error"
            assert body["error"] == "TraceFormatError"

    def test_unknown_scenario_field_is_400(self):
        with serving() as client:
            status, _, raw = client.run(dict(SCENARIO, robots=9))
            assert status == 400
            assert json.loads(raw)["error"] == "TraceFormatError"

    def test_unknown_endpoint_is_404(self):
        with serving() as client:
            status, _, raw = client.request("GET", "/nope")
            assert status == 404
            assert json.loads(raw)["kind"] == "error"

    def test_failing_run_surfaces_as_structured_500(self):
        # Scenario.from_dict accepts any algorithm string; the registry
        # lookup fails at run time, is charged against the retry budget,
        # and surfaces as WorkerCrashError -> structured 500 JSON, never
        # a dead socket or a traceback.
        with serving(policy=RunPolicy(retries=0, backoff=0.0)) as client:
            status, _, raw = client.run(dict(SCENARIO, algorithm="nope"))
            body = json.loads(raw)
            assert status == 500
            assert body["kind"] == "error"
            assert body["error"] == "WorkerCrashError"


class TestOperationalEndpoints:
    def test_healthz(self):
        with serving() as client:
            status, _, raw = client.healthz()
            assert status == 200
            body = json.loads(raw)
            assert body["status"] == "ok"
            assert body["backend"] in ("python", "numpy")

    def test_metrics_records_requests_cache_and_sweep_aggregate(self):
        with serving() as client:
            client.run(SCENARIO, seed=1)
            client.run(SCENARIO, seed=1)
            client.sweep(SCENARIO, seed_start=0, seed_count=2)
            document = client.metrics()
            assert document["schema"] == "repro-serve-metrics-v1"
            requests = document["requests"]
            assert requests["serve.run.requests"] == 2
            assert requests["serve.sweep.requests"] == 1
            assert requests["serve.cache.hit"] == 1
            assert document["cache"]["hits"] >= 2  # run + sweep seed 1
            latency = document["request_latency"]
            assert "serve.run.latency_seconds" in latency
            assert "serve.sweep.latency_seconds" in latency
            assert latency["serve.run.latency_seconds"]["count"] == 2
            # The sweep aggregate counted every computed seed and
            # namespaced its counters per endpoint.
            sweep = document["sweep"]
            assert sweep["schema"] == "repro-sweep-metrics-v1"
            # Only computed seeds reach the aggregate: seed 1 via /run,
            # then seed 0 via /sweep (the sweep's seed 1 was a cache
            # hit and never touched the simulator).
            assert sweep["seeds"]["done"] == 2
            assert any(
                name.startswith("serve.run.") or name.startswith("serve.sweep.")
                for name in sweep["counters"]
            )


class TestSharedDiskStore:
    def test_second_daemon_hits_first_daemons_results(self, tmp_path):
        root = str(tmp_path / "store")
        with serving(store_root=root) as client:
            _, _, cold = client.run(SCENARIO, seed=5)
        # Fresh daemon, same disk store: warm from request one.
        with serving(store_root=root) as client:
            _, headers, warm = client.run(SCENARIO, seed=5)
            assert headers["X-Repro-Cache"] == "hit"
            assert warm == cold
