"""Request IDs, per-request span trees, access log, and Prometheus.

The observability acceptance surface of the serve stack: every response
carries an ``X-Repro-Request-Id`` (client-supplied ids propagate
verbatim, malformed ones are replaced), a daemon given ``trace_jsonl``
records one joined span tree per request — HTTP-layer spans and the
grafted worker-side run/round/phase spans sharing the request id — and
``GET /metrics`` content-negotiates between the default JSON document
and the Prometheus text exposition derived from it.
"""

import json
import re

from repro.obs.histogram import DEFAULT_BOUNDS
from repro.obs.log import read_log
from repro.obs.spans import read_spans
from repro.serve.prometheus import exposition, wants_prometheus
from repro.serve.tracing import REQUEST_ID_HEADER, clean_request_id

from .client import serving

SCENARIO = {
    "workload": "random",
    "n": 6,
    "f": 1,
    "crashes": "random",
    "max_rounds": 5000,
}

_HEX32 = re.compile(r"^[0-9a-f]{32}$")


class TestRequestIds:
    def test_client_id_is_echoed_verbatim(self):
        with serving() as client:
            status, headers, _ = client.request(
                "POST", "/run", {"scenario": SCENARIO, "seed": 1},
                headers={REQUEST_ID_HEADER: "my-req.01"},
            )
            assert status == 200
            assert headers[REQUEST_ID_HEADER] == "my-req.01"

    def test_missing_id_gets_generated(self):
        with serving() as client:
            status, headers, _ = client.run(SCENARIO, seed=1)
            assert status == 200
            assert _HEX32.match(headers[REQUEST_ID_HEADER])

    def test_malformed_id_is_replaced(self):
        with serving() as client:
            _, headers, _ = client.request(
                "POST", "/run", {"scenario": SCENARIO, "seed": 1},
                headers={REQUEST_ID_HEADER: "bad id with spaces!"},
            )
            assert _HEX32.match(headers[REQUEST_ID_HEADER])

    def test_get_endpoints_carry_ids_too(self):
        with serving() as client:
            _, headers, _ = client.request(
                "GET", "/healthz", headers={REQUEST_ID_HEADER: "health-1"}
            )
            assert headers[REQUEST_ID_HEADER] == "health-1"

    def test_clean_request_id_rules(self):
        assert clean_request_id("ok-id_1.2") == "ok-id_1.2"
        assert _HEX32.match(clean_request_id(None))
        assert _HEX32.match(clean_request_id(""))
        assert _HEX32.match(clean_request_id("x" * 200))
        assert _HEX32.match(clean_request_id("bad\nid"))

    def test_body_bytes_unchanged_by_request_id(self):
        # Cache hits must stay byte-identical across different ids: the
        # id travels in headers only, never the body.
        with serving() as client:
            _, _, cold = client.request(
                "POST", "/run", {"scenario": SCENARIO, "seed": 1},
                headers={REQUEST_ID_HEADER: "first-id"},
            )
            _, headers, warm = client.request(
                "POST", "/run", {"scenario": SCENARIO, "seed": 1},
                headers={REQUEST_ID_HEADER: "second-id"},
            )
            assert headers["X-Repro-Cache"] == "hit"
            assert warm == cold


class TestRequestSpans:
    def test_run_produces_joined_span_tree(self, tmp_path):
        spans_path = str(tmp_path / "serve.spans.jsonl")
        with serving(workers=2, trace_jsonl=spans_path) as client:
            status, headers, _ = client.request(
                "POST", "/run", {"scenario": SCENARIO, "seed": 3},
                headers={REQUEST_ID_HEADER: "joined-req-1"},
            )
            assert status == 200
        # close() promoted the .partial file.
        meta, spans = read_spans(spans_path)
        assert meta["source"] == "repro-serve"
        mine = [
            s for s in spans
            if (s.get("attrs") or {}).get("request_id") == "joined-req-1"
        ]
        names = {s["name"] for s in mine}
        assert {"request", "admission_wait", "cache_lookup",
                "singleflight", "worker_run"} <= names
        kinds = {s["kind"] for s in mine}
        # Worker-side spans were grafted under the same request id.
        assert {"request", "serve", "run", "round", "phase"} <= kinds
        # The tree is closed: every parent id exists in the file.
        ids = {s["id"] for s in mine}
        assert all(
            s["parent"] in ids for s in mine if s["parent"] is not None
        )
        worker_run = [s for s in mine if s["name"] == "worker_run"]
        assert len(worker_run) == 1
        roots = [s for s in mine if s["kind"] == "run"]
        assert all(s["parent"] == worker_run[0]["id"] for s in roots)
        # Grafted spans sit inside the server's worker_run window.
        lo = worker_run[0]["start_ns"]
        hi = lo + worker_run[0]["dur_ns"]
        for span in roots:
            assert lo <= span["start_ns"] <= hi

    def test_cache_hit_skips_worker_spans(self, tmp_path):
        spans_path = str(tmp_path / "serve.spans.jsonl")
        with serving(workers=2, trace_jsonl=spans_path) as client:
            client.run(SCENARIO, seed=4)
            _, headers, _ = client.request(
                "POST", "/run", {"scenario": SCENARIO, "seed": 4},
                headers={REQUEST_ID_HEADER: "warm-req"},
            )
            assert headers["X-Repro-Cache"] == "hit"
        _, spans = read_spans(spans_path)
        warm = [
            s for s in spans
            if (s.get("attrs") or {}).get("request_id") == "warm-req"
        ]
        names = {s["name"] for s in warm}
        assert "cache_lookup" in names
        assert "worker_run" not in names
        lookup = next(s for s in warm if s["name"] == "cache_lookup")
        assert lookup["attrs"]["hit"] is True

    def test_untraced_daemon_writes_no_spans_file(self, tmp_path):
        spans_path = tmp_path / "never.spans.jsonl"
        with serving() as client:
            client.run(SCENARIO, seed=1)
        assert not spans_path.exists()


class TestAccessLog:
    def test_requests_land_in_structured_access_log(self, tmp_path):
        log_path = str(tmp_path / "access.log.jsonl")
        with serving(access_log=log_path) as client:
            client.request(
                "POST", "/run", {"scenario": SCENARIO, "seed": 1},
                headers={REQUEST_ID_HEADER: "logged-req"},
            )
            client.request("GET", "/healthz")
        meta, records = read_log(log_path)
        assert meta["source"] == "repro-serve"
        access = [r for r in records if r["event"] == "http.access"]
        assert len(access) == 2
        run_rec = access[0]["fields"]
        assert run_rec["request_id"] == "logged-req"
        assert run_rec["method"] == "POST"
        assert run_rec["route"] == "run"
        assert run_rec["status"] == 200
        assert run_rec["cache"] == "miss"
        assert run_rec["admission"] == "admitted"
        assert run_rec["duration_s"] >= 0
        health_rec = access[1]["fields"]
        assert health_rec["route"] == "healthz"
        assert health_rec["status"] == 200

    def test_error_responses_are_logged_with_status(self, tmp_path):
        log_path = str(tmp_path / "access.log.jsonl")
        with serving(access_log=log_path) as client:
            status, _, _ = client.request("POST", "/run", {"seed": 1})
            assert status == 400
        _, records = read_log(log_path)
        access = [r for r in records if r["event"] == "http.access"]
        assert access[0]["fields"]["status"] == 400
        assert access[0]["fields"]["route"] == "run"


class TestPrometheusNegotiation:
    def test_default_stays_json(self):
        with serving() as client:
            client.run(SCENARIO, seed=1)
            status, headers, body = client.request("GET", "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("application/json")
            assert json.loads(body)["schema"] == "repro-serve-metrics-v1"

    def test_accept_text_plain_switches_to_prometheus(self):
        with serving() as client:
            client.run(SCENARIO, seed=1)
            status, headers, body = client.request(
                "GET", "/metrics", headers={"Accept": "text/plain"}
            )
            assert status == 200
            assert headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            text = body.decode()
            assert "repro_serve_run_requests_total 1" in text
            # Every sample line parses: name{labels} value.
            for line in text.strip().splitlines():
                if line.startswith("#"):
                    continue
                name_part, value = line.rsplit(" ", 1)
                assert re.match(r"^[a-zA-Z_][a-zA-Z0-9_]*(\{.*\})?$",
                                name_part)
                float(value)  # must be numeric

    def test_wants_prometheus_rules(self):
        assert wants_prometheus("text/plain")
        assert wants_prometheus("text/plain; version=0.0.4")
        assert wants_prometheus("application/openmetrics-text, */*")
        assert not wants_prometheus("*/*")
        assert not wants_prometheus("")
        assert not wants_prometheus(None)
        assert not wants_prometheus("application/json")

    def test_prometheus_numbers_match_json(self):
        with serving() as client:
            client.run(SCENARIO, seed=1)
            client.run(SCENARIO, seed=1)  # warm: one hit
            _, _, json_body = client.request("GET", "/metrics")
            _, _, prom_body = client.request(
                "GET", "/metrics", headers={"Accept": "text/plain"}
            )
            document = json.loads(json_body)
            text = prom_body.decode()
            assert (
                f"repro_serve_run_requests_total "
                f"{document['requests']['serve.run.requests']}" in text
            )
            assert (
                f"repro_serve_cache_hit_total "
                f"{document['requests']['serve.cache.hit']}" in text
            )
