"""Test-side HTTP client for the ``repro serve`` daemon.

``serving()`` runs a real :class:`~repro.serve.server.ReproServer` on an
ephemeral port inside the test process (one background thread, no
subprocess, no lingering sockets across CI runs) and yields a
:class:`ServeClient` speaking plain ``http.client`` — the daemon is
exercised over an actual TCP socket, chunked sweep stream included.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from http.client import HTTPConnection
from typing import Iterator, Optional, Tuple

from repro.serve import ReproServer


class ServeClient:
    """Minimal blocking client: one connection per request."""

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, dict, bytes]:
        """-> ``(status, headers, raw body)``; chunked bodies are
        already de-chunked by ``http.client``."""
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None if payload is None else json.dumps(payload).encode()
            merged = (
                {} if body is None else {"Content-Type": "application/json"}
            )
            if headers:
                merged.update(headers)
            conn.request(method, path, body=body, headers=merged)
            response = conn.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            conn.close()

    def run(
        self, scenario: dict, seed: int = 0, **extra
    ) -> Tuple[int, dict, bytes]:
        return self.request(
            "POST", "/run", {"scenario": scenario, "seed": seed, **extra}
        )

    def sweep(self, scenario: dict, **fields) -> Tuple[int, dict, bytes]:
        return self.request("POST", "/sweep", {"scenario": scenario, **fields})

    def healthz(self) -> Tuple[int, dict, bytes]:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        status, _, body = self.request("GET", "/metrics")
        assert status == 200, body
        return json.loads(body)


@contextmanager
def serving(**server_kwargs) -> Iterator[ServeClient]:
    """A live daemon on an ephemeral port, torn down on exit."""
    server = ReproServer(port=0, **server_kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServeClient(server.host, server.port)
        client.server = server  # tests poke at the store/aggregator
        yield client
    finally:
        server.close()
        thread.join(timeout=10)
