"""Store races under real concurrency: exactly-once computation.

``N`` threads fire identical and distinct ``POST /run``\\ s through real
sockets at once.  The properties under test are the cache's soundness
guarantees, which must hold for *every* interleaving:

* one computation per content address (duplicates coalesce or hit);
* every response body for one key is byte-identical;
* the request/cache counters add up — nothing double-counted, nothing
  lost.
"""

import json
import threading

from .client import serving

SCENARIO = {
    "workload": "random",
    "n": 6,
    "f": 1,
    "crashes": "random",
    "max_rounds": 5000,
}


def fire_concurrently(client, payloads):
    """POST /run for every payload at once (barrier start); -> results."""
    results = [None] * len(payloads)
    barrier = threading.Barrier(len(payloads))

    def worker(index, payload):
        barrier.wait()
        results[index] = client.request("POST", "/run", payload)

    threads = [
        threading.Thread(target=worker, args=(i, p))
        for i, p in enumerate(payloads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


class TestIdenticalRequests:
    def test_duplicates_compute_exactly_once(self, tmp_path):
        n_clients = 8
        with serving(store_root=str(tmp_path / "store")) as client:
            payload = {"scenario": SCENARIO, "seed": 42}
            results = fire_concurrently(client, [payload] * n_clients)

            bodies = set()
            states = []
            for status, headers, raw in results:
                assert status == 200
                bodies.add(raw)
                states.append(headers["X-Repro-Cache"])
            # Byte-identical bodies, whichever path each request took.
            assert len(bodies) == 1
            assert json.loads(bodies.pop())["seed"] == 42

            # Exactly-once: one store fill for one content address,
            # however many requests raced for it.
            store = client.server.store
            assert store.stores == 1
            assert len(store) == 1

            # Every request is accounted for exactly once: the leader
            # is the miss, every other is a hit (arrived after the fill)
            # or coalesced (arrived during the computation).
            document = client.metrics()
            requests = document["requests"]
            assert requests["serve.run.requests"] == n_clients
            assert requests.get("serve.cache.miss", 0) == 1
            accounted = (
                requests.get("serve.cache.miss", 0)
                + requests.get("serve.cache.hit", 0)
                + requests.get("serve.cache.coalesced", 0)
            )
            assert accounted == n_clients
            assert document["robustness"]["coalesced"] == requests.get(
                "serve.cache.coalesced", 0
            )
            assert states.count("miss") == 1

    def test_coalesced_followers_wait_for_leader(self, tmp_path):
        # Serialize the simulation behind a request already holding the
        # work lock: followers for the same key must then overlap the
        # leader and coalesce (not recompute) once it releases.
        with serving(store_root=str(tmp_path / "store")) as client:
            release = threading.Event()
            client.server._work_lock.acquire()
            holder = threading.Thread(
                target=lambda: (
                    release.wait(10),
                    client.server._work_lock.release(),
                )
            )
            holder.start()
            try:
                payload = {"scenario": SCENARIO, "seed": 7}
                results_box = {}

                def racers():
                    results_box["r"] = fire_concurrently(
                        client, [payload] * 4
                    )

                thread = threading.Thread(target=racers)
                thread.start()
                # All four requests are now parked (one on the work
                # lock, three on the flight); let them go.
                deadline_t = threading.Event()
                deadline_t.wait(0.2)
                release.set()
                thread.join(timeout=30)
            finally:
                release.set()
                holder.join(timeout=10)
            results = results_box["r"]
            assert [status for status, _, _ in results] == [200] * 4
            assert len({raw for _, _, raw in results}) == 1
            assert client.server.store.stores == 1
            assert client.server.flights.coalesced >= 1


class TestDistinctRequests:
    def test_distinct_seeds_all_compute_once(self, tmp_path):
        seeds = list(range(10))
        with serving(store_root=str(tmp_path / "store")) as client:
            payloads = [{"scenario": SCENARIO, "seed": s} for s in seeds]
            results = fire_concurrently(client, payloads)
            for seed, (status, _, raw) in zip(seeds, results):
                assert status == 200
                assert json.loads(raw)["seed"] == seed
            store = client.server.store
            assert store.stores == len(seeds)
            assert len(store) == len(seeds)

            # Replaying the same batch is all hits, byte-identical.
            replay = fire_concurrently(client, payloads)
            assert [r[2] for r in replay] == [r[2] for r in results]
            assert store.stores == len(seeds)  # nothing recomputed
            hits = client.metrics()["requests"]["serve.cache.hit"]
            assert hits >= len(seeds)
