"""Golden schema of ``/metrics``: JSON key set and Prometheus mapping.

Scrapers and dashboards bind to these names; a rename or a bucket-bound
change silently breaks recorded history.  This test pins the
``repro-serve-metrics-v1`` document's key set and the derived
Prometheus exposition — metric names, types, and the histogram ``le``
labels, which must be the bit-identical :mod:`repro.obs.histogram`
boundaries.
"""

import json
import re

from repro.obs.histogram import DEFAULT_BOUNDS
from repro.serve.prometheus import exposition

from .client import serving

SCENARIO = {
    "workload": "random",
    "n": 6,
    "f": 1,
    "crashes": "random",
    "max_rounds": 5000,
}

#: Top-level keys of the repro-serve-metrics-v1 document.
DOCUMENT_KEYS = {
    "schema",
    "version",
    "uptime_s",
    "backend",
    "requests",
    "request_latency",
    "cache",
    "robustness",
    "sweep",
}

#: Keys of the robustness block.
ROBUSTNESS_KEYS = {
    "ready",
    "draining",
    "breaker_state",
    "breaker",
    "inflight",
    "max_inflight",
    "sweep_weight",
    "rejected",
    "deadline_exceeded",
    "coalesced",
    "quarantined",
}

#: Keys of the cache block (ResultStore.counters()).
CACHE_KEYS = {
    "hits",
    "disk_hits",
    "misses",
    "stores",
    "quarantined",
    "write_errors",
    "read_errors",
    "memory_entries",
    "memory_limit",
    "disk",
}

#: Prometheus families every scrape of a daemon that served one /run
#: must contain, with their TYPE.
EXPECTED_FAMILIES = {
    "repro_serve_run_requests_total": "counter",
    "repro_serve_cache_miss_total": "counter",
    "repro_serve_run_latency_seconds": "histogram",
    "repro_serve_cache_store_hits_total": "counter",
    "repro_serve_cache_store_misses_total": "counter",
    "repro_serve_cache_store_stores_total": "counter",
    "repro_serve_cache_store_memory_entries": "gauge",
    "repro_serve_cache_store_memory_limit": "gauge",
    "repro_serve_ready": "gauge",
    "repro_serve_draining": "gauge",
    "repro_serve_inflight": "gauge",
    "repro_serve_coalesced_total": "gauge",
    "repro_serve_breaker_state": "gauge",
    "repro_serve_uptime_seconds": "gauge",
}


def _scrape(client):
    _, _, body = client.request(
        "GET", "/metrics", headers={"Accept": "text/plain"}
    )
    return body.decode()


def _families(text):
    """{family name: declared TYPE} from a scrape."""
    types = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
    return types


class TestJsonDocumentGolden:
    def test_top_level_key_set_is_pinned(self):
        with serving() as client:
            client.run(SCENARIO, seed=1)
            document = client.metrics()
        assert set(document) == DOCUMENT_KEYS
        assert document["schema"] == "repro-serve-metrics-v1"
        assert set(document["robustness"]) == ROBUSTNESS_KEYS
        assert set(document["cache"]) == CACHE_KEYS

    def test_histogram_entries_carry_bounds_and_counts(self):
        with serving() as client:
            client.run(SCENARIO, seed=1)
            document = client.metrics()
        hist = document["request_latency"]["serve.run.latency_seconds"]
        assert hist["bounds"] == DEFAULT_BOUNDS
        assert len(hist["counts"]) == len(DEFAULT_BOUNDS) + 1
        assert hist["count"] == 1


class TestPrometheusGolden:
    def test_families_and_types(self):
        with serving() as client:
            client.run(SCENARIO, seed=1)
            text = _scrape(client)
        families = _families(text)
        for name, kind in EXPECTED_FAMILIES.items():
            assert families.get(name) == kind, name
        # Non-numeric store fields (the disk root) must not leak out.
        assert "disk" not in text.replace("disk_hits", "")

    def test_histogram_bucket_bounds_are_bit_identical(self):
        with serving() as client:
            client.run(SCENARIO, seed=1)
            text = _scrape(client)
        les = re.findall(
            r'repro_serve_run_latency_seconds_bucket\{le="([^"]+)"\}', text
        )
        assert les[:-1] == [repr(b) for b in DEFAULT_BOUNDS]
        assert les[-1] == "+Inf"
        # repr round-trips: parsing the label recovers the exact float.
        assert [float(le) for le in les[:-1]] == DEFAULT_BOUNDS

    def test_histogram_buckets_are_cumulative_and_consistent(self):
        with serving() as client:
            client.run(SCENARIO, seed=1)
            client.run(SCENARIO, seed=1)
            text = _scrape(client)
        buckets = [
            float(value)
            for value in re.findall(
                r'repro_serve_run_latency_seconds_bucket\{le="[^"]+"\} (\S+)',
                text,
            )
        ]
        assert buckets == sorted(buckets)  # cumulative: never decreases
        count = float(
            re.search(
                r"repro_serve_run_latency_seconds_count (\S+)", text
            ).group(1)
        )
        assert buckets[-1] == count == 2

    def test_exposition_is_deterministic_for_a_document(self):
        document = {
            "schema": "repro-serve-metrics-v1",
            "uptime_s": 1.5,
            "requests": {"serve.run.requests": 3},
            "request_latency": {},
            "cache": {"hits": 1, "disk": None, "memory_entries": 1},
            "robustness": {
                "ready": True,
                "draining": False,
                "inflight": 0,
                "max_inflight": None,
                "coalesced": 0,
                "breaker_state": "closed",
            },
        }
        assert exposition(document) == exposition(document)
        text = exposition(document)
        assert "repro_serve_run_requests_total 3" in text
        assert 'repro_serve_breaker_state{state="closed"} 1' in text
        assert 'repro_serve_breaker_state{state="open"} 0' in text
        assert "repro_serve_max_inflight" not in text
        assert "repro_serve_uptime_seconds 1.5" in text
