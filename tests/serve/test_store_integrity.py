"""Integrity layer of the result store: envelopes, quarantine, audits.

The store's self-healing contract: corruption is a *miss*, never an
error — a corrupt on-disk entry is quarantined and transparently
recomputed — and a failing disk degrades the store to memory-only
without failing a single request.  These tests pin that contract at the
store API plus the ``repro serve-store`` offline audits behind it.
"""

import json
import os

import pytest

from repro.resilience import ChaosPolicy
from repro.serve.store import (
    QUARANTINE_DIR,
    STORE_SCHEMA,
    ResultStore,
    decode_entry,
    encode_entry,
)

KEY_A = "aa" + "1" * 62
KEY_B = "bb" + "2" * 62
BODY = '{"result":"gathered"}\n'


def fresh_disk_store(tmp_path, **kwargs) -> ResultStore:
    return ResultStore(str(tmp_path / "store"), **kwargs)


def corrupt_on_disk(store: ResultStore, key: str) -> None:
    """Flip body bytes under the envelope's nose (simulated bit rot)."""
    path = store._path(key)
    with open(path, "r", encoding="utf-8") as handle:
        raw = handle.read()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(raw.replace("gathered", "tampered"))


class TestEnvelope:
    def test_round_trip(self):
        raw = encode_entry(BODY)
        header = json.loads(raw.split("\n", 1)[0])
        assert header["schema"] == STORE_SCHEMA
        assert len(header["sha256"]) == 64
        assert decode_entry(raw) == BODY

    def test_tampered_body_is_rejected(self):
        raw = encode_entry(BODY).replace("gathered", "tampered")
        assert decode_entry(raw) is None

    def test_truncated_envelope_is_rejected(self):
        header_only = encode_entry(BODY).split("\n", 1)[0]
        assert decode_entry(header_only) is None

    def test_legacy_raw_bodies_still_decode(self):
        # Entries written before the envelope existed carry no header;
        # an upgraded daemon must keep serving them verbatim.
        assert decode_entry(BODY.rstrip("\n")) == BODY.rstrip("\n")
        multiline = '{"a":1}\n{"b":2}\n'
        assert decode_entry(multiline) == multiline


class TestSelfHealing:
    def test_corrupt_entry_is_quarantined_and_recomputed(self, tmp_path):
        store = fresh_disk_store(tmp_path)
        store.put(KEY_A, BODY)
        corrupt_on_disk(store, KEY_A)

        # A fresh store (no memory copy) must detect the corruption,
        # report a miss, and move the file out of the serving path.
        reopened = ResultStore(store.root)
        assert reopened.get(KEY_A) is None
        assert reopened.quarantined == 1
        assert not os.path.exists(reopened._path(KEY_A))
        quarantine = os.path.join(store.root, QUARANTINE_DIR)
        assert len(os.listdir(quarantine)) == 1

        # The caller recomputes and the key serves again, verified.
        reopened.put(KEY_A, BODY)
        assert ResultStore(store.root).get(KEY_A) == BODY

    def test_put_survives_unwritable_root(self, tmp_path):
        # Regression: a failing disk write must degrade to memory-only,
        # never raise out of the request handler.  chmod tricks don't
        # bind as root, so the unwritable root is a path whose parent
        # is a regular file (makedirs -> NotADirectoryError ⊂ OSError).
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file, not directory")
        store = ResultStore(str(blocker / "store"))
        store.put(KEY_A, BODY)  # must not raise
        assert store.write_errors == 1
        assert store.get(KEY_A) == BODY  # memory still serves
        # Later writes keep degrading silently (warning fired once).
        store.put(KEY_B, BODY)
        assert store.write_errors == 2

    def test_chaos_write_fault_degrades_to_memory(self, tmp_path):
        chaos = ChaosPolicy(seed=1, store_write=1.0)
        store = fresh_disk_store(tmp_path, chaos=chaos)
        store.put(KEY_A, BODY)
        assert store.write_errors == 1
        assert store.get(KEY_A) == BODY  # memory hit
        assert not os.path.exists(store._path(KEY_A))

    def test_chaos_read_fault_is_a_miss_then_heals(self, tmp_path):
        # Pick a chaos seed whose schedule fails attempt 0 but not
        # attempt 1 for this key: the fault must be transient through
        # the *same* code path, so the retry (the recompute's next
        # lookup) heals without special-casing.
        for seed in range(200):
            policy = ChaosPolicy(seed=seed, store_read=0.6)
            if policy.decide_serve(
                "store_read", KEY_A, 0
            ) and not policy.decide_serve("store_read", KEY_A, 1):
                break
        else:  # pragma: no cover - 200 seeds always yield one
            pytest.fail("no suitable chaos seed found")
        store = fresh_disk_store(tmp_path, chaos=policy)
        store.put(KEY_A, BODY)
        # Drop the memory copy so the read goes to disk.
        store._memory.clear()
        assert store.get(KEY_A) is None  # attempt 0: injected OSError
        assert store.read_errors == 1
        assert store.get(KEY_A) == BODY  # attempt 1: healed
        assert store.quarantined == 0  # a read fault is not corruption

    def test_uncounted_get_leaves_counters_alone(self, tmp_path):
        store = fresh_disk_store(tmp_path)
        store.put(KEY_A, BODY)
        assert store.get(KEY_A, count=False) == BODY
        assert store.get(KEY_B, count=False) is None
        assert store.hits == 0
        assert store.misses == 0


class TestOfflineAudits:
    def test_verify_reports_and_repairs(self, tmp_path):
        store = fresh_disk_store(tmp_path)
        store.put(KEY_A, BODY)
        store.put(KEY_B, BODY)
        corrupt_on_disk(store, KEY_A)

        report = ResultStore(store.root).verify_disk(repair=False)
        assert report["checked"] == 2
        assert report["corrupt"] == 1
        assert report["quarantined"] == 0
        assert report["corrupt_keys"] == [KEY_A]
        assert os.path.exists(store._path(KEY_A))  # report-only

        report = ResultStore(store.root).verify_disk(repair=True)
        assert report["quarantined"] == 1
        assert not os.path.exists(store._path(KEY_A))
        assert ResultStore(store.root).verify_disk()["corrupt"] == 0

    def test_verify_counts_legacy_entries(self, tmp_path):
        store = fresh_disk_store(tmp_path)
        path = store._path(KEY_A)
        os.makedirs(os.path.dirname(path))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(BODY)  # raw pre-envelope entry
        report = store.verify_disk()
        assert report["legacy"] == 1
        assert report["corrupt"] == 0

    def test_gc_removes_quarantine_and_temp_debris(self, tmp_path):
        store = fresh_disk_store(tmp_path)
        store.put(KEY_A, BODY)
        store.put(KEY_B, BODY)
        corrupt_on_disk(store, KEY_A)
        ResultStore(store.root).verify_disk(repair=True)
        stray = os.path.join(store.root, KEY_B[:2], "leftover.tmp")
        with open(stray, "w", encoding="utf-8") as handle:
            handle.write("writer died mid-rename")

        report = ResultStore(store.root).gc_disk()
        assert report["removed"] == 2
        assert report["freed_bytes"] > 0
        assert not os.path.exists(stray)
        assert os.listdir(os.path.join(store.root, QUARANTINE_DIR)) == []
        # The healthy entry is untouched.
        assert ResultStore(store.root).get(KEY_B) == BODY

    def test_disk_stats(self, tmp_path):
        store = fresh_disk_store(tmp_path)
        store.put(KEY_A, BODY)
        store.put(KEY_B, BODY)
        corrupt_on_disk(store, KEY_A)
        ResultStore(store.root).verify_disk(repair=True)
        stats = ResultStore(store.root).disk_stats()
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 0
        assert stats["quarantined"] == 1

    def test_audits_on_missing_root_are_empty(self, tmp_path):
        store = ResultStore(str(tmp_path / "never-created"))
        assert store.verify_disk()["checked"] == 0
        assert store.gc_disk()["removed"] == 0
        assert store.disk_stats()["entries"] == 0
