"""Unit tests for the serve self-protection primitives.

These exercise :mod:`repro.serve.admission` directly — no HTTP, no
simulator — so every property (budget arithmetic, deadline clocks,
coalescing, breaker state machine) is pinned at the layer that owns it.
The server-level tests then only need to prove the wiring.
"""

import threading
import time

import pytest

from repro.resilience import RequestDeadlineError, ServerOverloadedError
from repro.serve.admission import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    SingleFlight,
)


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired
        deadline.check("anywhere")  # never raises

    def test_bounded_counts_down_and_expires(self):
        deadline = Deadline(60.0)
        remaining = deadline.remaining()
        assert 0 < remaining <= 60.0
        assert not deadline.expired

        expired = Deadline(0.0)
        assert expired.expired
        assert expired.remaining() == 0.0
        with pytest.raises(RequestDeadlineError) as excinfo:
            expired.check("while testing")
        assert "while testing" in str(excinfo.value)
        assert excinfo.value.http_status == 504


class TestAdmissionController:
    def test_unbounded_budget_counts_but_never_sheds(self):
        admission = AdmissionController(None)
        for _ in range(100):
            admission.acquire(5, endpoint="run")
        assert admission.inflight == 500
        assert admission.active_requests == 100

    def test_budget_sheds_with_429(self):
        admission = AdmissionController(2)
        admission.acquire(1, endpoint="run")
        admission.acquire(1, endpoint="run")
        with pytest.raises(ServerOverloadedError) as excinfo:
            admission.acquire(1, endpoint="run")
        assert excinfo.value.http_status == 429
        assert excinfo.value.retry_after_s >= 1.0
        # Releasing frees the unit for the next request.
        admission.release(1)
        admission.acquire(1, endpoint="run")

    def test_overweight_request_admitted_only_when_idle(self):
        admission = AdmissionController(4, sweep_weight=8)
        # Idle daemon: a sweep heavier than the whole budget still runs —
        # a budget must never make a legal request impossible.
        admission.acquire(admission.weight_for("sweep"), endpoint="sweep")
        assert admission.inflight == 8
        # But while it holds the budget, everything else is shed.
        with pytest.raises(ServerOverloadedError):
            admission.acquire(1, endpoint="run")
        admission.release(8)
        admission.acquire(1, endpoint="run")

    def test_weight_for_endpoints(self):
        admission = AdmissionController(None, sweep_weight=7)
        assert admission.weight_for("run") == 1
        assert admission.weight_for("sweep") == 7

    def test_drain_waits_for_inflight(self):
        admission = AdmissionController(None)
        admission.acquire(1, endpoint="run")

        def finish():
            time.sleep(0.05)
            admission.release(1)

        thread = threading.Thread(target=finish)
        thread.start()
        assert admission.drain(5.0) is True
        thread.join()
        assert admission.inflight == 0

    def test_drain_times_out_when_stuck(self):
        admission = AdmissionController(None)
        admission.acquire(1, endpoint="run")
        assert admission.drain(0.05) is False

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(None, sweep_weight=0)


class TestSingleFlight:
    def test_leader_then_follower_share_one_body(self):
        flights = SingleFlight()
        leader, flight = flights.lead_or_follow("k")
        assert leader
        follower, same = flights.lead_or_follow("k")
        assert not follower
        assert same is flight
        assert flights.coalesced == 1

        results = []
        waiter = threading.Thread(
            target=lambda: results.append(
                SingleFlight.wait(flight, Deadline(5.0))
            )
        )
        waiter.start()
        flights.finish("k", flight, body="BODY")
        waiter.join()
        assert results == ["BODY"]
        # The flight is gone: the next request for the key leads anew.
        leader, _ = flights.lead_or_follow("k")
        assert leader

    def test_followers_inherit_leader_error(self):
        flights = SingleFlight()
        _, flight = flights.lead_or_follow("k")
        flights.lead_or_follow("k")
        flights.finish("k", flight, error=RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            SingleFlight.wait(flight, Deadline(None))

    def test_follower_deadline_is_a_504(self):
        flights = SingleFlight()
        _, flight = flights.lead_or_follow("k")
        with pytest.raises(RequestDeadlineError):
            SingleFlight.wait(flight, Deadline(0.01))

    def test_distinct_keys_do_not_coalesce(self):
        flights = SingleFlight()
        assert flights.lead_or_follow("a")[0]
        assert flights.lead_or_follow("b")[0]
        assert flights.coalesced == 0


class TestCircuitBreaker:
    def test_opens_at_threshold_and_success_closes(self):
        breaker = CircuitBreaker(threshold=3, window_s=30.0, cooldown_s=60.0)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.snapshot()["recent_failures"] == 0

    def test_half_opens_after_cooldown(self):
        breaker = CircuitBreaker(threshold=1, window_s=30.0, cooldown_s=0.02)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        time.sleep(0.03)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_window_prunes_stale_failures(self):
        breaker = CircuitBreaker(threshold=2, window_s=0.02, cooldown_s=60.0)
        breaker.record_failure()
        time.sleep(0.03)
        # The first failure fell out of the window: still closed.
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_snapshot_shape(self):
        breaker = CircuitBreaker(threshold=5, window_s=30.0, cooldown_s=10.0)
        snapshot = breaker.snapshot()
        assert snapshot == {
            "state": "closed",
            "recent_failures": 0,
            "threshold": 5,
            "window_s": 30.0,
            "cooldown_s": 10.0,
            "trips": 0,
        }

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
