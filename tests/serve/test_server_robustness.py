"""Server-level wiring of the self-protection layer, over real sockets.

The primitives are unit-tested in ``test_admission.py``; here we prove
the daemon actually threads them through the HTTP path: deadlines become
structured 504s that free their slot, an exhausted budget becomes a 429
with ``Retry-After``, draining and an open breaker flip ``/readyz``
while ``/healthz`` stays alive, and ``/metrics`` exposes it all.
"""

import json
import threading
import time

from repro.resilience import ChaosPolicy

from .client import serving

SCENARIO = {
    "workload": "random",
    "n": 6,
    "f": 1,
    "crashes": "random",
    "max_rounds": 5000,
}


class TestDeadlines:
    def test_expired_deadline_is_structured_504(self):
        with serving() as client:
            status, _, raw = client.run(SCENARIO, seed=5, deadline_s=1e-6)
            body = json.loads(raw)
            assert status == 504
            assert body["kind"] == "error"
            assert body["error"] == "RequestDeadlineError"
            # The slot was freed: the same request without the
            # impossible budget computes normally.
            status, _, _ = client.run(SCENARIO, seed=5)
            assert status == 200

    def test_server_default_deadline_applies(self):
        with serving(request_deadline=1e-6) as client:
            status, _, raw = client.run(SCENARIO, seed=6)
            assert status == 504
            assert json.loads(raw)["error"] == "RequestDeadlineError"

    def test_request_override_beats_server_default(self):
        # A generous per-request deadline overrides an impossible
        # server default — the override is a real override, not a cap.
        with serving(request_deadline=1e-6) as client:
            status, _, _ = client.run(SCENARIO, seed=7, deadline_s=120.0)
            assert status == 200

    def test_deadline_rejects_nonsense(self):
        with serving() as client:
            status, _, raw = client.run(SCENARIO, seed=1, deadline_s=-1)
            assert status == 400
            assert json.loads(raw)["error"] == "TraceFormatError"

    def test_sweep_deadline_expired_before_stream_is_clean_504(self):
        # An already-expired budget is caught before the stream
        # commits its 200, so the client still gets a proper status
        # code (mid-stream expiry becomes the stream's structured
        # last line instead — see the chaos integration suite).
        with serving() as client:
            status, _, raw = client.sweep(
                SCENARIO, seed_start=0, seed_count=4, deadline_s=1e-6
            )
            assert status == 504
            assert json.loads(raw)["error"] == "RequestDeadlineError"


class TestLoadShedding:
    def test_busy_daemon_sheds_with_retry_after(self):
        # serve_slow=1.0 makes every handler sleep after admission —
        # a deterministic long-running request to race against.
        chaos = ChaosPolicy(seed=1, serve_slow=1.0, serve_slow_s=0.5)
        with serving(max_inflight=1, chaos=chaos) as client:
            blocker = threading.Thread(
                target=client.run, args=(SCENARIO,), kwargs={"seed": 1}
            )
            blocker.start()
            try:
                deadline = time.monotonic() + 5.0
                while (
                    client.server.admission.inflight == 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.005)
                status, headers, raw = client.run(SCENARIO, seed=2)
            finally:
                blocker.join()
            body = json.loads(raw)
            assert status == 429
            assert body["error"] == "ServerOverloadedError"
            assert int(headers["Retry-After"]) >= 1
            # Shedding is not an outage: once the blocker finishes,
            # the same request is admitted and served.
            status, _, _ = client.run(SCENARIO, seed=2)
            assert status == 200
            robustness = client.metrics()["robustness"]
            assert robustness["rejected"] >= 1
            assert robustness["max_inflight"] == 1


class TestReadiness:
    def test_draining_daemon_rejects_new_work_but_stays_alive(self):
        with serving() as client:
            client.server._draining = True
            try:
                status, _, raw = client.run(SCENARIO, seed=1)
                assert status == 503
                assert json.loads(raw)["error"] == "ServerDrainingError"
                status, _, raw = client.healthz()
                health = json.loads(raw)
                assert status == 200  # alive...
                assert health["status"] == "ok"
                assert health["ready"] is False  # ...but not ready
                assert health["draining"] is True
                status, _, _ = client.request("GET", "/readyz")
                assert status == 503
            finally:
                client.server._draining = False
            assert client.run(SCENARIO, seed=1)[0] == 200

    def test_open_breaker_flips_readyz_not_healthz(self):
        with serving(breaker_threshold=2) as client:
            for _ in range(2):
                client.server.breaker.record_failure()
            assert client.request("GET", "/readyz")[0] == 503
            status, _, raw = client.healthz()
            assert status == 200
            assert json.loads(raw)["breaker"] == "open"
            robustness = client.metrics()["robustness"]
            assert robustness["breaker_state"] == "open"
            assert robustness["breaker"]["trips"] == 1
            # One successful computation is proof of recovery.
            assert client.run(SCENARIO, seed=1)[0] == 200
            assert client.request("GET", "/readyz")[0] == 200

    def test_metrics_robustness_block_shape(self):
        with serving(max_inflight=8, sweep_weight=3) as client:
            robustness = client.metrics()["robustness"]
            assert robustness["ready"] is True
            assert robustness["draining"] is False
            assert robustness["breaker_state"] == "closed"
            assert robustness["inflight"] == 0
            assert robustness["max_inflight"] == 8
            assert robustness["sweep_weight"] == 3
            assert robustness["rejected"] == 0
            assert robustness["deadline_exceeded"] == 0
            assert robustness["coalesced"] == 0
            assert robustness["quarantined"] == 0


class TestGracefulDrain:
    def test_close_waits_for_inflight_requests(self):
        chaos = ChaosPolicy(seed=1, serve_slow=1.0, serve_slow_s=0.3)
        with serving(chaos=chaos) as client:
            results = {}

            def slow_request():
                results["response"] = client.run(SCENARIO, seed=9)

            thread = threading.Thread(target=slow_request)
            thread.start()
            deadline = time.monotonic() + 5.0
            while (
                client.server.admission.inflight == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            # close() must block until the admitted request finished —
            # its response arrives complete, not torn.
            client.server.close(drain_s=10.0)
            thread.join(timeout=10)
            status, _, raw = results["response"]
            assert status == 200
            assert json.loads(raw)["kind"] == "run"
