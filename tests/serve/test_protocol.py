"""Wire-protocol unit tests: parsing strictness, body determinism."""

import json

import pytest

from repro.experiments.runner import Scenario, run_scenario
from repro.resilience import (
    ReproError,
    SeedTimeoutError,
    TraceFormatError,
    WorkerCrashError,
)
from repro.serve import protocol


SCENARIO = {"workload": "gathered", "n": 4, "crashes": "none", "f": 0}


class TestParseJsonBody:
    def test_valid(self):
        assert protocol.parse_json_body(b'{"a": 1}') == {"a": 1}

    def test_not_json_is_400(self):
        with pytest.raises(TraceFormatError) as err:
            protocol.parse_json_body(b"{nope")
        assert err.value.http_status == 400

    def test_non_object_rejected(self):
        with pytest.raises(TraceFormatError):
            protocol.parse_json_body(b"[1, 2]")

    def test_oversized_body_rejected(self):
        raw = b" " * (protocol.MAX_BODY_BYTES + 1)
        with pytest.raises(TraceFormatError):
            protocol.parse_json_body(raw)


class TestParseRunRequest:
    def test_defaults(self):
        request = protocol.parse_run_request({"scenario": SCENARIO})
        assert request.seed == 0
        assert request.use_cache is True
        assert request.scenario.workload == "gathered"

    def test_missing_scenario(self):
        with pytest.raises(TraceFormatError):
            protocol.parse_run_request({"seed": 1})

    def test_unknown_scenario_field_rejected(self):
        bad = dict(SCENARIO, robots=9)
        with pytest.raises(TraceFormatError):
            protocol.parse_run_request({"scenario": bad})

    def test_bool_seed_rejected(self):
        with pytest.raises(TraceFormatError):
            protocol.parse_run_request({"scenario": SCENARIO, "seed": True})

    def test_cache_opt_out(self):
        request = protocol.parse_run_request(
            {"scenario": SCENARIO, "cache": False}
        )
        assert request.use_cache is False


class TestParseSweepRequest:
    def test_seed_range(self):
        request = protocol.parse_sweep_request(
            {"scenario": SCENARIO, "seed_start": 5, "seed_count": 3}
        )
        assert request.seeds == [5, 6, 7]

    def test_explicit_seeds(self):
        request = protocol.parse_sweep_request(
            {"scenario": SCENARIO, "seeds": [3, 1, 9]}
        )
        assert request.seeds == [3, 1, 9]

    def test_empty_seeds_rejected(self):
        with pytest.raises(TraceFormatError):
            protocol.parse_sweep_request({"scenario": SCENARIO, "seeds": []})

    def test_non_int_seeds_rejected(self):
        with pytest.raises(TraceFormatError):
            protocol.parse_sweep_request(
                {"scenario": SCENARIO, "seeds": [1, "2"]}
            )

    def test_seed_limit_enforced(self):
        with pytest.raises(TraceFormatError):
            protocol.parse_sweep_request(
                {
                    "scenario": SCENARIO,
                    "seed_count": protocol.MAX_SWEEP_SEEDS + 1,
                }
            )


class TestBodies:
    def test_run_body_is_deterministic_and_one_line(self):
        scenario = Scenario.from_dict(SCENARIO)
        result = run_scenario(scenario, 0)
        one = protocol.run_body(
            "k" * 64, scenario, 0, result, backend="python", code_version="1"
        )
        two = protocol.run_body(
            "k" * 64, scenario, 0, result, backend="python", code_version="1"
        )
        assert one == two
        assert one.endswith("\n") and one.count("\n") == 1
        parsed = json.loads(one)
        assert parsed["schema"] == protocol.SERVE_SCHEMA
        assert parsed["result"]["verdict"] == result.verdict

    def test_error_body_maps_taxonomy_statuses(self):
        cases = [
            (TraceFormatError("bad"), 400),
            (SeedTimeoutError("slow"), 504),
            (WorkerCrashError("boom"), 500),
            (ReproError("generic"), 500),
        ]
        for exc, status in cases:
            parsed = json.loads(protocol.error_body(exc))
            assert parsed["kind"] == "error"
            assert parsed["status"] == status
            assert parsed["error"] == type(exc).__name__
