"""Content-addressed result store: key canonicalization + torn reads.

The two properties the serving layer's correctness rests on:

* the content address is a function of the scenario's *meaning*, not
  its JSON spelling — key order and float formatting must not change
  the hash (else identical requests would miss the cache); and
* two daemons sharing one on-disk store never serve a torn read — a
  reader sees a whole document or nothing, because every write goes
  through ``atomic_write`` (temp file + fsync + rename).
"""

import json
import random
import threading

from hypothesis import given
from hypothesis import strategies as st

from repro.serve.store import ResultStore, result_key

SCENARIO = {
    "workload": "random",
    "n": 8,
    "algorithm": "wait-free-gather",
    "scheduler": "random",
    "crashes": "random",
    "f": 2,
    "movement": "random-stop",
    "max_rounds": 20000,
    "frames": "random",
    "halt_on_bivalent": True,
    "engine": "atom",
}

CONTEXT = dict(backend="python", engine="atom", code_version="1.0.0")


class TestKeyCanonicalization:
    @given(st.randoms(use_true_random=False))
    def test_key_order_is_irrelevant(self, rng):
        items = list(SCENARIO.items())
        rng.shuffle(items)
        shuffled = dict(items)
        assert shuffled == SCENARIO  # same mapping, different insert order
        assert result_key(shuffled, 7, **CONTEXT) == result_key(
            SCENARIO, 7, **CONTEXT
        )

    def test_integral_floats_collapse_to_ints(self):
        # A client sending {"n": 8.0} (say, via a float-happy JSON
        # encoder) must hit the same cache entry as {"n": 8}.
        floaty = dict(SCENARIO, n=8.0, f=2.0, max_rounds=20000.0)
        assert result_key(floaty, 0, **CONTEXT) == result_key(
            SCENARIO, 0, **CONTEXT
        )

    def test_json_formatting_is_irrelevant(self):
        # The same scenario spelled three ways on the wire.
        spellings = [
            '{"n": 8, "workload": "random"}',
            '{"workload": "random", "n": 8.0}',
            '{ "workload" : "random",\n  "n" : 8.00 }',
        ]
        keys = {
            result_key(json.loads(text), 0, **CONTEXT) for text in spellings
        }
        assert len(keys) == 1

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(
                st.integers(-1000, 1000),
                st.booleans(),
                st.text(max_size=8),
                st.floats(allow_nan=False, allow_infinity=False),
            ),
            max_size=6,
        ),
        st.integers(0, 2**31),
    )
    def test_distinct_inputs_distinct_keys(self, scenario, seed):
        # Sanity direction: the key actually depends on its inputs.
        base = result_key(scenario, seed, **CONTEXT)
        assert base != result_key(scenario, seed + 1, **CONTEXT)
        assert base != result_key(
            scenario, seed, backend="numpy", engine="atom", code_version="1.0.0"
        )
        assert base != result_key(
            scenario, seed, backend="python", engine="atom", code_version="2"
        )

    def test_boolean_not_conflated_with_int(self):
        # canonical JSON keeps True distinct from 1.
        a = result_key({"halt": True}, 0, **CONTEXT)
        b = result_key({"halt": 1}, 0, **CONTEXT)
        assert a != b


class TestStoreSemantics:
    def test_memory_roundtrip_and_counters(self):
        store = ResultStore()
        key = result_key(SCENARIO, 0, **CONTEXT)
        assert store.get(key) is None
        store.put(key, '{"x":1}\n')
        assert store.get(key) == '{"x":1}\n'
        counters = store.counters()
        assert counters["hits"] == 1
        assert counters["misses"] == 1
        assert counters["stores"] == 1

    def test_lru_evicts_oldest(self):
        store = ResultStore(memory_entries=2)
        store.put("a" * 64, "A")
        store.put("b" * 64, "B")
        assert store.get("a" * 64) == "A"  # refreshes a
        store.put("c" * 64, "C")  # evicts b
        assert store.get("b" * 64) is None
        assert store.get("a" * 64) == "A"
        assert store.get("c" * 64) == "C"

    def test_disk_survives_new_instance(self, tmp_path):
        root = str(tmp_path / "store")
        first = ResultStore(root)
        key = result_key(SCENARIO, 3, **CONTEXT)
        first.put(key, '{"r":"ok"}\n')
        # A second daemon (fresh process in real life) sees the entry.
        second = ResultStore(root)
        assert second.get(key) == '{"r":"ok"}\n'
        assert second.counters()["disk_hits"] == 1
        # ...and promotes it to memory: next hit skips the disk.
        assert second.get(key) == '{"r":"ok"}\n'
        assert second.counters()["disk_hits"] == 1


class TestConcurrentTornReads:
    def test_two_stores_sharing_disk_never_serve_torn_reads(self, tmp_path):
        """Writers hammer shared keys with large bodies while readers in
        a second store instance poll: every read parses whole."""
        root = str(tmp_path / "shared")
        writer_store = ResultStore(root, memory_entries=1)
        # memory_entries=1 forces nearly every reader hit to the disk
        # layer, where tearing would happen if writes weren't atomic.
        reader_store = ResultStore(root, memory_entries=1)

        keys = [f"{i:02d}" + "k" * 62 for i in range(4)]
        # Large enough that a non-atomic write would be visibly torn.
        bodies = {
            key: json.dumps({"key": key, "pad": "x" * 200_000}) + "\n"
            for key in keys
        }
        stop = threading.Event()
        problems = []

        def writer():
            rng = random.Random(1)
            while not stop.is_set():
                key = keys[rng.randrange(len(keys))]
                writer_store.put(key, bodies[key])

        def reader():
            rng = random.Random(2)
            while not stop.is_set():
                key = keys[rng.randrange(len(keys))]
                body = reader_store.get(key)
                if body is None:
                    continue  # not written yet: a miss, never a tear
                try:
                    parsed = json.loads(body)
                except json.JSONDecodeError:
                    problems.append(f"torn read for {key!r}")
                    return
                if parsed["key"] != key or body != bodies[key]:
                    problems.append(f"wrong bytes for {key!r}")
                    return

        threads = [threading.Thread(target=writer) for _ in range(2)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        try:
            import time

            time.sleep(1.5)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not problems, problems
