"""Unit tests for leader election (algorithm line 17)."""

import random

import pytest

from repro.core import Configuration, elect, election_key, safe_points
from repro.geometry import Point, random_frame
from repro.workloads import generate

O = Point(0.0, 0.0)


class TestElectionKey:
    def test_multiplicity_dominates(self):
        c = Configuration([O] * 2 + [Point(5, 0), Point(0, 5), Point(5, 5)])
        # O has mult 2, the others 1: O must win regardless of distances.
        winner = elect(c, c.support)
        assert winner == O

    def test_distance_sum_breaks_mult_ties(self):
        # Equal multiplicities: the most central point (smallest sum of
        # distances) wins.
        pts = [Point(0, 0), Point(1, 0), Point(2, 0), Point(1, 0.8)]
        c = Configuration(pts)
        winner = elect(c, c.support)
        assert winner == Point(1, 0)

    def test_empty_candidates_raises(self):
        c = Configuration([O, Point(1, 0)])
        with pytest.raises(ValueError):
            elect(c, [])

    def test_election_restricted_to_candidates(self):
        c = Configuration([O] * 2 + [Point(5, 0), Point(0, 5)])
        winner = elect(c, [Point(5, 0), Point(0, 5)])
        assert winner in (Point(5, 0), Point(0, 5))


class TestDeterminism:
    def test_all_robots_agree_in_asymmetric_configs(self):
        """Anonymous agreement: the elected point must be the same no
        matter which robot computes it, in any private frame."""
        for seed in range(5):
            pts = generate("asymmetric", 7, seed)
            c = Configuration(pts)
            winner = elect(c, safe_points(c))
            for frame_seed in range(4):
                f = random_frame(random.Random(frame_seed), origin=Point(2, 2))
                framed_pts = [f.to_local(p) for p in pts]
                fc = Configuration(framed_pts)
                framed_winner = elect(fc, safe_points(fc))
                assert framed_winner.close_to(
                    f.to_local(winner), fc.tol
                ) or framed_winner.distance_to(f.to_local(winner)) < 1e-6, (
                    f"seed {seed} frame {frame_seed}"
                )

    def test_key_orders_views_totally(self):
        pts = generate("asymmetric", 6, 3)
        c = Configuration(pts)
        keys = [election_key(c, p) for p in c.support]
        assert len(set(keys)) == len(keys)  # all distinct in class A
