"""Unit tests for the Configuration multiset."""

import pytest

from repro.core import Configuration
from repro.geometry import Point, Tolerance


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Configuration([])

    def test_points_preserve_input_order(self):
        pts = [Point(1, 0), Point(0, 0), Point(1, 0)]
        c = Configuration(pts)
        assert list(c.points) == pts

    def test_n_counts_robots_not_locations(self):
        c = Configuration([Point(0, 0)] * 5)
        assert c.n == 5
        assert len(c.support) == 1

    def test_support_sorted_and_deduplicated(self):
        c = Configuration([Point(1, 0), Point(0, 0), Point(1, 0)])
        assert c.support == (Point(0, 0), Point(1, 0))


class TestMerging:
    def test_close_points_merged(self, tol):
        jitter = tol.eps_dist / 4
        c = Configuration([Point(0, 0), Point(jitter, 0), Point(1, 0)])
        assert len(c.support) == 2
        assert c.mult(Point(0, 0)) == 2

    def test_representative_is_lexicographic_minimum(self, tol):
        jitter = tol.eps_dist / 4
        c = Configuration([Point(jitter, 0), Point(0, 0)])
        assert c.support == (Point(0, 0),)

    def test_merge_is_input_order_independent(self, tol):
        jitter = tol.eps_dist / 4
        a = Configuration([Point(0, 0), Point(jitter, 0), Point(5, 5)])
        b = Configuration([Point(5, 5), Point(jitter, 0), Point(0, 0)])
        assert a.support == b.support

    def test_chained_merge_via_union_find(self, tol):
        # a~b and b~c merge all three even if a!~c directly.
        step = tol.eps_dist * 0.9
        c = Configuration([Point(0, 0), Point(step, 0), Point(2 * step, 0)])
        assert len(c.support) == 1
        assert c.mult(Point(0, 0)) == 3

    def test_distinct_points_not_merged(self, tol):
        c = Configuration([Point(0, 0), Point(3 * tol.eps_dist, 0)])
        assert len(c.support) == 2


class TestMultiplicity:
    def test_strong_multiplicity_detection(self):
        c = Configuration([Point(0, 0)] * 3 + [Point(1, 1)] * 2 + [Point(2, 2)])
        assert c.mult(Point(0, 0)) == 3
        assert c.mult(Point(1, 1)) == 2
        assert c.mult(Point(2, 2)) == 1

    def test_mult_of_unoccupied_is_zero(self):
        c = Configuration([Point(0, 0)])
        assert c.mult(Point(5, 5)) == 0

    def test_max_multiplicity_points(self):
        c = Configuration([Point(0, 0)] * 2 + [Point(1, 1)] * 2 + [Point(2, 2)])
        tops = c.max_multiplicity_points()
        assert sorted(tops) == [Point(0, 0), Point(1, 1)]
        assert c.max_multiplicity() == 2

    def test_locate_tolerant(self, tol):
        c = Configuration([Point(1, 1)])
        assert c.locate(Point(1 + tol.eps_dist / 2, 1)) == Point(1, 1)
        assert c.locate(Point(2, 2)) is None


class TestDerived:
    def test_is_gathered(self):
        assert Configuration([Point(1, 1)] * 4).is_gathered()
        assert not Configuration([Point(1, 1), Point(2, 2)]).is_gathered()

    def test_is_linear(self):
        line = Configuration([Point(t, 2 * t) for t in range(4)])
        assert line.is_linear()
        tri = Configuration([Point(0, 0), Point(1, 0), Point(0, 1)])
        assert not tri.is_linear()

    def test_sec_uses_support_not_multiset(self):
        # Stacking robots on one point must not bias the SEC.
        c = Configuration([Point(0, 0)] * 10 + [Point(2, 0)])
        sec = c.sec()
        assert sec.center.close_to(Point(1, 0))

    def test_equality_is_multiset_equality(self):
        a = Configuration([Point(0, 0), Point(1, 1)])
        b = Configuration([Point(1, 1), Point(0, 0)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Configuration([Point(0, 0), Point(0, 0)])

    def test_moved_returns_new_configuration(self):
        c = Configuration([Point(0, 0), Point(1, 1)])
        d = c.moved({0: Point(5, 5)})
        assert list(d.points) == [Point(5, 5), Point(1, 1)]
        assert list(c.points) == [Point(0, 0), Point(1, 1)]  # immutable

    def test_memo_caches(self):
        c = Configuration([Point(0, 0), Point(1, 1)])
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert c.memo("k", compute) == 42
        assert c.memo("k", compute) == 42
        assert len(calls) == 1
