"""Unit tests for views and rotational symmetry (Definitions 2-3)."""

import math
import random

from repro.core import (
    Configuration,
    equivalence_classes,
    symmetry,
    view_of,
    view_table,
    views_equal,
)
from repro.geometry import Point, random_frame

from ..conftest import regular_ngon


def _framed(points, seed):
    """Re-express a point list in a random orientation-preserving frame."""
    f = random_frame(random.Random(seed), origin=Point(1.0, -2.0))
    return [f.to_local(p) for p in points]


class TestViewBasics:
    def test_gathered_views_are_all_origin(self):
        c = Configuration([Point(3, 3)] * 4)
        v = view_of(c, Point(3, 3))
        assert v == ((0.0, 0.0),) * 4

    def test_view_contains_one_entry_per_robot(self):
        c = Configuration([Point(0, 0)] * 2 + [Point(1, 0), Point(0, 1)])
        v = view_of(c, Point(1, 0))
        assert len(v) == 4

    def test_view_of_unoccupied_raises(self):
        import pytest

        c = Configuration([Point(0, 0), Point(1, 0)])
        with pytest.raises(ValueError):
            view_of(c, Point(9, 9))

    def test_view_table_covers_support(self):
        c = Configuration([Point(0, 0), Point(1, 0), Point(0, 2)])
        table = view_table(c)
        assert set(table) == set(c.support)


class TestSymmetry:
    def test_regular_polygon_full_symmetry(self):
        for k in (3, 4, 5, 6, 8):
            c = Configuration(regular_ngon(k, radius=2.0, phase=0.37))
            assert symmetry(c) == k, f"{k}-gon"

    def test_generic_points_asymmetric(self):
        rng = random.Random(1)
        c = Configuration(
            [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(7)]
        )
        assert symmetry(c) == 1

    def test_rectangle_symmetry_two(self):
        c = Configuration([Point(2, 1), Point(-2, 1), Point(-2, -1), Point(2, -1)])
        assert symmetry(c) == 2

    def test_mirror_symmetry_is_not_rotational(self):
        # Isosceles (non-equilateral) triangle: only axial symmetry.
        # Chirality (clockwise views) tells the two base corners apart
        # from each other's mirror, so sym = 1.
        c = Configuration([Point(-1, 0), Point(1, 0), Point(0, 3)])
        assert symmetry(c) == 1

    def test_polygon_with_center_robot(self):
        pts = regular_ngon(5, radius=1.5) + [Point(0, 0)]
        c = Configuration(pts)
        assert symmetry(c) == 5  # the orbit of the ring dominates

    def test_multiplicities_break_symmetry(self):
        pts = regular_ngon(4, radius=1.0)
        c = Configuration(pts + [pts[0]])  # double one corner
        assert symmetry(c) == 1

    def test_equal_multiplicities_keep_symmetry(self):
        pts = regular_ngon(3, radius=1.0)
        c = Configuration(pts * 2)  # every corner doubled
        assert symmetry(c) == 3

    def test_two_points_symmetry(self):
        c = Configuration([Point(0, 0), Point(2, 0)])
        assert symmetry(c) == 2  # swapping rotation by pi


class TestEquivalenceClasses:
    def test_polygon_single_class(self):
        c = Configuration(regular_ngon(6, radius=1.0))
        classes = equivalence_classes(c)
        assert len(classes) == 1
        assert len(classes[0]) == 6

    def test_two_concentric_orbits(self):
        pts = regular_ngon(4, radius=1.0) + regular_ngon(4, radius=2.0)
        c = Configuration(pts)
        classes = sorted(equivalence_classes(c), key=len)
        assert [len(cls) for cls in classes] == [4, 4]
        assert symmetry(c) == 4

    def test_views_equal_reflexive(self):
        c = Configuration([Point(0, 0), Point(1, 2), Point(3, -1)])
        table = view_table(c)
        for v in table.values():
            assert views_equal(v, v, c.tol)


class TestFrameInvariance:
    """Views are local-coordinate constructions: any two robots must agree
    on view *equality* regardless of their private frames."""

    def test_symmetry_invariant_under_frames(self):
        base = regular_ngon(5, radius=2.0, phase=1.1)
        for seed in range(5):
            c = Configuration(_framed(base, seed))
            assert symmetry(c) == 5

    def test_asymmetry_invariant_under_frames(self):
        rng = random.Random(3)
        base = [Point(rng.uniform(0, 8), rng.uniform(0, 8)) for _ in range(6)]
        assert symmetry(Configuration(base)) == 1
        for seed in range(5):
            assert symmetry(Configuration(_framed(base, seed))) == 1

    def test_class_sizes_invariant_under_frames(self):
        base = regular_ngon(3, radius=1.0) + regular_ngon(3, radius=3.0, phase=0.2)
        reference = sorted(
            len(cls) for cls in equivalence_classes(Configuration(base))
        )
        for seed in range(5):
            c = Configuration(_framed(base, seed))
            assert (
                sorted(len(cls) for cls in equivalence_classes(c)) == reference
            )
