"""Unit tests for the Section IV partition (B/M/L1W/L2W/QR/A)."""

import random

import pytest

from repro.core import ConfigClass, Configuration, classify, is_gathering_possible
from repro.geometry import Point
from repro.workloads import generate

from ..conftest import regular_ngon

O = Point(0.0, 0.0)


def on_line(ts, direction=Point(1.0, 0.0), origin=O):
    return [origin + direction * t for t in ts]


class TestBivalent:
    def test_two_balanced_points(self):
        c = Configuration([O] * 3 + [Point(1, 1)] * 3)
        assert classify(c) is ConfigClass.BIVALENT

    def test_two_robots_distinct_is_bivalent(self):
        # n = 2 at distinct points: the classic impossible case.
        assert classify(Configuration([O, Point(1, 0)])) is ConfigClass.BIVALENT

    def test_unbalanced_two_points_is_multiple(self):
        c = Configuration([O] * 4 + [Point(1, 1)] * 2)
        assert classify(c) is ConfigClass.MULTIPLE

    def test_gathering_possible_iff_not_bivalent(self):
        biv = Configuration([O] * 2 + [Point(1, 1)] * 2)
        assert not is_gathering_possible(biv)
        assert is_gathering_possible(Configuration([O, Point(1, 0), Point(0, 1)]))


class TestMultiple:
    def test_unique_maximum(self):
        c = Configuration([O] * 3 + [Point(1, 0), Point(2, 2)])
        assert classify(c) is ConfigClass.MULTIPLE

    def test_gathered_is_multiple(self):
        assert classify(Configuration([O] * 5)) is ConfigClass.MULTIPLE

    def test_tied_maximum_is_not_multiple(self):
        c = Configuration([O] * 2 + [Point(1, 0)] * 2 + [Point(0, 1)])
        assert classify(c) is not ConfigClass.MULTIPLE

    def test_multiplicity_beats_linearity(self):
        # Linear but with unique max multiplicity: class M, not L.
        c = Configuration(on_line([0.0, 0.0, 1.0, 2.0]))
        assert classify(c) is ConfigClass.MULTIPLE


class TestLinear:
    def test_odd_distinct_is_l1w(self):
        c = Configuration(on_line([0.0, 1.0, 4.0, 5.0, 9.0]))
        assert classify(c) is ConfigClass.LINEAR_UNIQUE_WEBER

    def test_even_distinct_is_l2w(self):
        c = Configuration(on_line([0.0, 1.0, 4.0, 9.0]))
        assert classify(c) is ConfigClass.LINEAR_MANY_WEBER

    def test_even_with_coincident_medians_is_l1w(self):
        # Block pattern (2, 2, 2): medians coincide on the middle block.
        c = Configuration(on_line([0.0, 0.0, 1.0, 1.0, 2.0, 2.0]))
        assert classify(c) is ConfigClass.LINEAR_UNIQUE_WEBER

    def test_diagonal_direction(self):
        c = Configuration(on_line([0.0, 1.0, 2.0], direction=Point(1, 1)))
        assert classify(c) in (
            ConfigClass.LINEAR_UNIQUE_WEBER,
            ConfigClass.MULTIPLE,
        )

    def test_lemma_4_1_two_locations(self):
        """(|U| = 2) => B or M."""
        for mults in [(1, 1), (2, 2), (1, 2), (3, 1)]:
            pts = [O] * mults[0] + [Point(1, 0)] * mults[1]
            assert classify(Configuration(pts)) in (
                ConfigClass.BIVALENT,
                ConfigClass.MULTIPLE,
            ), mults

    def test_lemma_4_1_three_locations(self):
        """(|U| = 3 linear) => M or L1W."""
        for mults in [(1, 1, 1), (2, 1, 1), (1, 2, 1), (2, 1, 2), (1, 1, 3)]:
            pts = (
                [O] * mults[0]
                + [Point(1, 0)] * mults[1]
                + [Point(2.5, 0)] * mults[2]
            )
            assert classify(Configuration(pts)) in (
                ConfigClass.MULTIPLE,
                ConfigClass.LINEAR_UNIQUE_WEBER,
            ), mults

    def test_lemma_4_1_l2w_needs_four_locations(self):
        """(C in L2W) => |U| >= 4."""
        for seed in range(10):
            pts = generate("linear-interval", 6, seed)
            c = Configuration(pts)
            assert classify(c) is ConfigClass.LINEAR_MANY_WEBER
            assert len(c.support) >= 4


class TestQuasiRegularAndAsymmetric:
    def test_polygon_is_qr(self):
        c = Configuration(regular_ngon(5, radius=2.0))
        assert classify(c) is ConfigClass.QUASI_REGULAR

    def test_generic_is_asymmetric(self):
        rng = random.Random(2)
        c = Configuration(
            [Point(rng.uniform(0, 9), rng.uniform(0, 9)) for _ in range(7)]
        )
        assert classify(c) is ConfigClass.ASYMMETRIC

    def test_polygon_plus_unique_stack_is_multiple(self):
        pts = regular_ngon(4, radius=2.0)
        c = Configuration(pts + [pts[0]])
        assert classify(c) is ConfigClass.MULTIPLE

    def test_axially_symmetric_is_asymmetric_class(self):
        # Mirror symmetry only: chirality breaks it, so sym = 1 and the
        # configuration lands in A (the paper's Section I discussion).
        c = Configuration([Point(-1, 0), Point(1, 0), Point(0, 3), Point(0, 1)])
        assert classify(c) is ConfigClass.ASYMMETRIC

    def test_triangle_with_interior_fermat_point_is_qr(self):
        # Any triangle whose Fermat point is interior is *regular* per
        # Definition 5: the three rays from the Fermat point pairwise
        # subtend exactly 120 degrees, so the string of angles is
        # 3-periodic.  A pleasing consequence of the paper's purely
        # angular notion of regularity.
        c = Configuration([Point(-1, 0), Point(1, 0), Point(0, 3)])
        assert classify(c) is ConfigClass.QUASI_REGULAR


class TestPartition:
    """X = {B, M, L1W, L2W, QR, A} is a partition of all configurations."""

    @pytest.mark.parametrize(
        "workload,expected",
        [
            ("bivalent", ConfigClass.BIVALENT),
            ("multiple", ConfigClass.MULTIPLE),
            ("linear-unique", ConfigClass.LINEAR_UNIQUE_WEBER),
            ("linear-interval", ConfigClass.LINEAR_MANY_WEBER),
            ("regular-polygon", ConfigClass.QUASI_REGULAR),
            ("biangular", ConfigClass.QUASI_REGULAR),
            ("qr-occupied-center", ConfigClass.QUASI_REGULAR),
            ("asymmetric", ConfigClass.ASYMMETRIC),
        ],
    )
    def test_generators_hit_their_class(self, workload, expected):
        for seed in range(5):
            c = Configuration(generate(workload, 8, seed))
            assert classify(c) is expected, f"{workload} seed {seed}"

    def test_every_config_gets_exactly_one_class(self):
        # classify() is a total function returning one enum value; run it
        # over a mixed bag including degenerate shapes.
        shapes = [
            [O],
            [O, O],
            [O, Point(1, 0)],
            [O] * 3,
            on_line([0.0, 1.0, 2.0, 3.0]),
            regular_ngon(3),
            regular_ngon(4) + [O],
            [Point(random.Random(s).uniform(0, 5), random.Random(s + 99).uniform(0, 5)) for s in range(6)],
        ]
        for pts in shapes:
            assert isinstance(classify(Configuration(pts)), ConfigClass)

    def test_classification_memoized(self):
        c = Configuration(regular_ngon(4))
        assert classify(c) is classify(c)
