"""Unit tests for quasi-regularity (Definitions 6-7, Lemma 3.4, Thm 3.1)."""

import math
import random

from repro.core import (
    Configuration,
    quasi_regularity,
    satisfies_lemma_3_4,
    topping_deficiency,
)
from repro.geometry import Point, is_weber_point

from ..conftest import regular_ngon

O = Point(0.0, 0.0)


def cross_with_center(missing_east=False):
    """Center robot + rays N/S/W (+E unless missing): the wildcard case."""
    pts = [O, Point(0, 2), Point(0, -2), Point(-3, 0)]
    if not missing_east:
        pts.append(Point(2.5, 0))
    return pts


class TestToppingDeficiency:
    def test_complete_pattern_zero_deficiency(self):
        c = Configuration(cross_with_center())
        assert topping_deficiency(c, O, 2) == 0

    def test_missing_slot_costs_one(self):
        c = Configuration(cross_with_center(missing_east=True))
        assert topping_deficiency(c, O, 2) == 1

    def test_gathered_returns_none(self):
        c = Configuration([O] * 3)
        assert topping_deficiency(c, O, 2) is None

    def test_multiplicity_imbalance_counted(self):
        # East ray holds 2 robots, west 1: orbit max 2, deficiency 1.
        c = Configuration([O, Point(1, 0), Point(2, 0), Point(-1, 0), Point(0, 5), Point(0, -5)])
        assert topping_deficiency(c, O, 2) == 1

    def test_raises_for_m_below_two(self):
        import pytest

        c = Configuration(cross_with_center())
        with pytest.raises(ValueError):
            topping_deficiency(c, O, 1)


class TestLemma34:
    def test_one_wildcard_covers_one_missing_slot(self):
        c = Configuration(cross_with_center(missing_east=True))
        assert c.mult(O) == 1
        assert satisfies_lemma_3_4(c, O, 2)

    def test_insufficient_wildcards_rejected(self):
        # Remove the center robot: no wildcard, the N/S/W cross is not
        # 2-periodic on its own (deficiency 1 > 0).
        pts = [Point(0, 2), Point(0, -2), Point(-3, 0), Point(1.0, 1.3)]
        c = Configuration(pts)
        assert not satisfies_lemma_3_4(c, Point(0, 2), 2)

    def test_complete_pattern_always_accepted(self):
        c = Configuration(cross_with_center())
        assert satisfies_lemma_3_4(c, O, 2)


class TestQuasiRegularityDetection:
    def test_regular_is_quasi_regular(self):
        c = Configuration(regular_ngon(5, radius=2.0))
        qr = quasi_regularity(c)
        assert qr.is_quasi_regular and qr.m == 5
        assert qr.center.close_to(O)

    def test_occupied_center_with_wildcard(self):
        c = Configuration(cross_with_center(missing_east=True))
        qr = quasi_regularity(c)
        assert qr.is_quasi_regular
        # Topping the empty east slot up yields the full '+' pattern,
        # which is 4-periodic in angles — qreg reports the largest m.
        assert qr.m == 4
        assert qr.center == O

    def test_center_is_weber_point_lemma_3_3(self):
        pts = cross_with_center(missing_east=True)
        qr = quasi_regularity(Configuration(pts))
        assert is_weber_point(qr.center, pts)

    def test_generic_config_not_quasi_regular(self):
        rng = random.Random(5)
        c = Configuration(
            [Point(rng.uniform(0, 7), rng.uniform(0, 7)) for _ in range(7)]
        )
        assert not quasi_regularity(c).is_quasi_regular

    def test_linear_excluded_by_design(self):
        c = Configuration([Point(t, 0) for t in (-2.0, -1.0, 1.0, 2.0)])
        assert not quasi_regularity(c).is_quasi_regular

    def test_qreg_reports_largest_period(self):
        # A regular octagon accepts m = 8 (and its divisors); qreg = 8.
        c = Configuration(regular_ngon(8, radius=1.5, phase=0.9))
        assert quasi_regularity(c).m == 8

    def test_detection_stable_under_partial_contraction(self):
        # Lemma 3.2 + Lemma 5.5 C1: moving robots towards the center
        # keeps the configuration quasi-regular with the same center.
        rng = random.Random(12)
        pts = regular_ngon(6, radius=3.0, phase=0.1)
        c = Configuration(pts)
        center = quasi_regularity(c).center
        moved = [p + (center - p) * rng.uniform(0.0, 0.7) for p in pts]
        qr2 = quasi_regularity(Configuration(moved))
        assert qr2.is_quasi_regular
        assert qr2.center.close_to(center)

    def test_wildcards_cannot_fix_everything(self):
        # One wildcard, two independently broken slots: not quasi-regular.
        pts = [
            O,
            Point(0, 2),
            Point(0.4, -2.1),   # south ray bent
            Point(-3, 0),
            Point(2.5, 0.8),    # east ray bent
            Point(1.1, 2.9),    # extra unpaired ray
        ]
        assert not quasi_regularity(Configuration(pts)).is_quasi_regular

    def test_frame_invariance(self):
        from repro.geometry import random_frame

        base = cross_with_center(missing_east=True)
        for seed in range(4):
            f = random_frame(random.Random(seed), origin=Point(0.5, 0.5))
            framed = [f.to_local(p) for p in base]
            qr = quasi_regularity(Configuration(framed))
            assert qr.is_quasi_regular, f"seed {seed}"
            assert qr.center.close_to(f.to_local(O))
