"""Unit tests for WAIT-FREE-GATHER (Figure 2) as a pure function."""

import math
import random

import pytest

from repro.core import (
    BivalentConfigurationError,
    ConfigClass,
    Configuration,
    NotAPositionError,
    classify,
    destination_map,
    quasi_regularity,
    wait_free_gather,
)
from repro.geometry import Point, clockwise_angle, point_strictly_between
from repro.workloads import generate

from ..conftest import regular_ngon

O = Point(0.0, 0.0)


class TestGeneralContract:
    def test_not_a_position_raises(self):
        c = Configuration([O, Point(1, 0), Point(0, 1)])
        with pytest.raises(NotAPositionError):
            wait_free_gather(c, Point(9, 9))

    def test_bivalent_refused(self):
        c = Configuration([O] * 2 + [Point(1, 1)] * 2)
        with pytest.raises(BivalentConfigurationError):
            wait_free_gather(c, O)

    def test_gathered_configuration_is_fixpoint(self):
        c = Configuration([Point(2, 3)] * 5)
        assert wait_free_gather(c, Point(2, 3)) == Point(2, 3)

    def test_oblivious_determinism(self):
        pts = generate("asymmetric", 7, 1)
        c1 = Configuration(pts)
        c2 = Configuration(pts)
        for p in c1.support:
            assert wait_free_gather(c1, p) == wait_free_gather(c2, p)

    def test_wait_freedom_lemma_5_1(self):
        """At most one occupied location may be told to stay."""
        for workload in ("random", "asymmetric", "multiple", "linear-unique",
                         "linear-interval", "regular-polygon", "near-bivalent"):
            for seed in range(5):
                c = Configuration(generate(workload, 8, seed))
                stays = [
                    p
                    for p, d in destination_map(c).items()
                    if d.close_to(p, c.tol)
                ]
                assert len(stays) <= 1, f"{workload} seed {seed}: {stays}"


class TestCaseMultiple:
    def setup_method(self):
        # c = (0,0) x3; free robot east; blocked robot behind it; robot north.
        self.c_point = O
        self.pts = [O] * 3 + [Point(1, 0), Point(3, 0), Point(0, 2)]
        self.config = Configuration(self.pts)
        assert classify(self.config) is ConfigClass.MULTIPLE

    def test_robot_at_target_stays(self):
        assert wait_free_gather(self.config, O) == O

    def test_free_robot_goes_straight(self):
        assert wait_free_gather(self.config, Point(1, 0)) == O
        assert wait_free_gather(self.config, Point(0, 2)) == O

    def test_blocked_robot_side_steps(self):
        d = wait_free_gather(self.config, Point(3, 0))
        # Same distance from the target, strictly off the old ray.
        assert math.isclose(d.distance_to(O), 3.0, rel_tol=1e-9)
        assert d.y != 0.0

    def test_side_step_rotates_clockwise(self):
        d = wait_free_gather(self.config, Point(3, 0))
        theta = clockwise_angle(Point(3, 0), O, d)
        assert 0.0 < theta < math.pi / 2

    def test_side_step_avoids_other_rays(self):
        # The rotation is at most 1/3 of the clockwise gap to the next
        # occupied ray (and capped), so the new ray is unoccupied.
        d = wait_free_gather(self.config, Point(3, 0))
        theta = clockwise_angle(Point(3, 0), O, d)
        # Next occupied ray clockwise from east is north (gap 3*pi/2).
        assert theta <= math.pi / 2 + 1e-9

    def test_co_located_blocked_robots_get_same_destination(self):
        pts = [O] * 3 + [Point(1, 0), Point(3, 0), Point(3, 0), Point(0, 2)]
        c = Configuration(pts)
        d = wait_free_gather(c, Point(3, 0))
        assert isinstance(d, Point)  # one common instruction per position

    def test_all_on_one_ray_still_side_steps(self):
        pts = [O] * 2 + [Point(1, 0), Point(2, 0), Point(3, 0)]
        c = Configuration(pts)
        assert classify(c) is ConfigClass.MULTIPLE
        d = wait_free_gather(c, Point(2, 0))
        assert d.y != 0.0  # leaves the line even with no other ray


class TestCaseWeber:
    def test_qr_moves_to_center(self):
        pts = regular_ngon(5, radius=2.0, phase=0.3)
        c = Configuration(pts)
        assert classify(c) is ConfigClass.QUASI_REGULAR
        for p in c.support:
            assert wait_free_gather(c, p).close_to(O)

    def test_l1w_moves_to_median(self):
        pts = [Point(t, 0) for t in (0.0, 1.0, 3.0, 7.0, 9.0)]
        c = Configuration(pts)
        assert classify(c) is ConfigClass.LINEAR_UNIQUE_WEBER
        for p in c.support:
            assert wait_free_gather(c, p).close_to(Point(3, 0))

    def test_median_robot_stays(self):
        pts = [Point(t, 0) for t in (0.0, 1.0, 3.0, 7.0, 9.0)]
        c = Configuration(pts)
        assert wait_free_gather(c, Point(3, 0)) == Point(3, 0)


class TestCaseAsymmetric:
    def test_everyone_targets_the_same_safe_point(self):
        pts = generate("asymmetric", 7, 2)
        c = Configuration(pts)
        destinations = set(destination_map(c).values())
        assert len(destinations) == 1
        target = destinations.pop()
        assert target in c.support

    def test_target_is_safe(self):
        from repro.core import is_safe_point

        pts = generate("asymmetric", 9, 4)
        c = Configuration(pts)
        target = wait_free_gather(c, c.support[0])
        assert is_safe_point(c, target)


class TestCaseLinearInterval:
    def setup_method(self):
        self.pts = [Point(t, 0) for t in (0.0, 1.0, 3.0, 8.0)]
        self.config = Configuration(self.pts)
        assert classify(self.config) is ConfigClass.LINEAR_MANY_WEBER
        self.center = Point(4.0, 0.0)  # midpoint of extremes 0 and 8

    def test_interior_robots_contract_to_center(self):
        assert wait_free_gather(self.config, Point(1, 0)).close_to(self.center)
        assert wait_free_gather(self.config, Point(3, 0)).close_to(self.center)

    def test_extreme_robots_leave_the_line(self):
        for extreme in (Point(0, 0), Point(8, 0)):
            d = wait_free_gather(self.config, extreme)
            assert abs(d.y) > 0.1
            assert math.isclose(
                d.distance_to(self.center),
                extreme.distance_to(self.center),
                rel_tol=1e-9,
            )

    def test_both_extremes_rotate_to_distinct_points(self):
        d_lo = wait_free_gather(self.config, Point(0, 0))
        d_hi = wait_free_gather(self.config, Point(8, 0))
        assert not d_lo.close_to(d_hi)

    def test_simultaneous_full_moves_leave_l2w(self):
        moves = destination_map(self.config)
        after = Configuration([moves[p] for p in self.pts])
        assert classify(after) is not ConfigClass.LINEAR_MANY_WEBER
        assert classify(after) is not ConfigClass.BIVALENT
