"""Unit tests for regularity detection (Definition 5)."""

import math
import random

from repro.core import Configuration, regularity
from repro.geometry import Point

from ..conftest import regular_ngon

O = Point(0.0, 0.0)


def biangular_points(half, alpha, radii, phase=0.0, center=O):
    """2*half points with angles alternating alpha / (2*pi/half - alpha)."""
    beta = 2 * math.pi / half - alpha
    pts = []
    angle = phase
    for i in range(2 * half):
        r = radii[i % len(radii)]
        pts.append(
            Point(center.x + r * math.cos(angle), center.y + r * math.sin(angle))
        )
        angle += alpha if i % 2 == 0 else beta
    return pts


class TestRegularDetection:
    def test_regular_polygon(self):
        c = Configuration(regular_ngon(6, radius=2.0, phase=0.4))
        r = regularity(c)
        assert r.is_regular and r.m == 6
        assert r.center.close_to(O)

    def test_biangular_same_radius(self):
        c = Configuration(biangular_points(4, alpha=0.5, radii=[2.0]))
        r = regularity(c)
        assert r.is_regular and r.m == 4
        assert r.center.close_to(O)

    def test_biangular_mixed_radii(self):
        # Angles periodic, radii wildly different: still regular — this
        # is the point of Definition 5 being purely angular.
        c = Configuration(
            biangular_points(3, alpha=0.7, radii=[1.0, 3.0], phase=0.2)
        )
        r = regularity(c)
        assert r.is_regular and r.m >= 3

    def test_generic_points_not_regular(self):
        rng = random.Random(8)
        c = Configuration(
            [Point(rng.uniform(0, 9), rng.uniform(0, 9)) for _ in range(7)]
        )
        assert not regularity(c).is_regular

    def test_linear_reported_not_regular_by_design(self):
        c = Configuration([Point(t, 0) for t in (-2.0, -1.0, 1.0, 2.0)])
        assert not regularity(c).is_regular

    def test_gathered_not_regular(self):
        assert not regularity(Configuration([O] * 4)).is_regular

    def test_center_is_weber_point(self):
        # The detected center must satisfy the Weber certificate: the
        # whole detection strategy rests on center-of-regularity = WP.
        from repro.geometry import is_weber_point

        pts = biangular_points(4, alpha=0.9, radii=[1.0, 2.5], phase=1.3)
        c = Configuration(pts)
        r = regularity(c)
        assert r.is_regular
        assert is_weber_point(r.center, pts)

    def test_translated_and_rotated_polygon(self):
        center = Point(-3.0, 7.0)
        pts = regular_ngon(5, center=center, radius=1.7, phase=2.2)
        r = regularity(Configuration(pts))
        assert r.is_regular and r.m == 5
        assert r.center.close_to(center)

    def test_polygon_with_occupied_center_still_regular(self):
        # Robots AT the center are excluded from the string of angles;
        # the ring remains m-periodic around the occupied center.
        pts = regular_ngon(4, radius=2.0) + [O]
        r = regularity(Configuration(pts))
        assert r.is_regular and r.m == 4

    def test_perturbed_polygon_not_regular(self):
        pts = regular_ngon(6, radius=2.0)
        pts[0] = pts[0] + Point(0.0, 0.3)  # tangential-ish macroscopic nudge
        assert not regularity(Configuration(pts)).is_regular
