"""Unit tests for ray structure and the string of angles (Definition 4)."""

import math

from repro.core import (
    Configuration,
    angular_resolution,
    periodicity,
    ray_structure,
    string_of_angles,
)
from repro.geometry import TWO_PI, Point, angle_sum_is_full_turn

from ..conftest import regular_ngon

O = Point(0.0, 0.0)


class TestRayStructure:
    def test_everyone_at_center_yields_no_rays(self):
        c = Configuration([O] * 3)
        assert ray_structure(c, O) == []

    def test_rays_sorted_by_angle(self):
        c = Configuration([Point(0, 1), Point(1, 0), Point(-1, 0)])
        rays = ray_structure(c, O)
        angles = [r.angle for r in rays]
        assert angles == sorted(angles)
        assert len(rays) == 3

    def test_same_ray_clusters_points_by_distance(self):
        c = Configuration([Point(1, 0), Point(3, 0), Point(2, 0), Point(0, 1)])
        rays = ray_structure(c, O)
        east = next(r for r in rays if abs(r.angle) < 1e-9)
        assert east.count == 3
        assert list(east.points) == [Point(1, 0), Point(2, 0), Point(3, 0)]

    def test_multiplicities_counted(self):
        c = Configuration([Point(1, 0)] * 4 + [Point(0, 2)])
        rays = ray_structure(c, O)
        east = next(r for r in rays if abs(r.angle) < 1e-9)
        assert east.count == 4

    def test_center_robots_excluded(self):
        c = Configuration([O] * 2 + [Point(1, 0)])
        rays = ray_structure(c, O)
        assert len(rays) == 1 and rays[0].count == 1

    def test_wraparound_angle_clustering(self, tol):
        # Two points straddling the 0 / 2*pi seam form one ray.
        eps = tol.eps_angle / 10
        c = Configuration(
            [
                Point(math.cos(-eps), math.sin(-eps)),
                Point(2 * math.cos(eps), 2 * math.sin(eps)),
                Point(0, 1),
            ]
        )
        rays = ray_structure(c, O)
        assert len(rays) == 2


class TestStringOfAngles:
    def test_length_is_n_minus_center_mult(self):
        c = Configuration([O] * 2 + [Point(1, 0), Point(0, 1), Point(-1, -1)])
        sa = string_of_angles(c, O)
        assert len(sa) == 3

    def test_sums_to_full_turn(self, tol):
        c = Configuration(
            [Point(1, 0), Point(0, 2), Point(-3, 1), Point(-1, -2), Point(2, -1)]
        )
        sa = string_of_angles(c, O)
        assert angle_sum_is_full_turn(sa, tol)

    def test_single_ray_gives_zeros_then_full_turn(self):
        c = Configuration([Point(1, 0), Point(2, 0), Point(3, 0)])
        sa = string_of_angles(c, O)
        assert sa == [0.0, 0.0, TWO_PI]

    def test_square_gives_four_right_angles(self):
        c = Configuration(regular_ngon(4, radius=1.0, phase=0.2))
        sa = string_of_angles(c, O)
        assert len(sa) == 4
        assert all(math.isclose(a, math.pi / 2) for a in sa)

    def test_colocated_robots_contribute_zero_angles(self):
        c = Configuration([Point(1, 0)] * 3 + [Point(-1, 0)])
        sa = string_of_angles(c, O)
        assert sorted(sa) == [0.0, 0.0, math.pi, math.pi]

    def test_empty_for_gathered(self):
        assert string_of_angles(Configuration([O] * 2), O) == []


class TestPeriodicity:
    def test_empty_string(self, tol):
        assert periodicity([], tol) == 1

    def test_constant_string_fully_periodic(self, tol):
        assert periodicity([math.pi / 2] * 4, tol) == 4

    def test_biangular_string(self, tol):
        sa = [0.3, 1.2705] * 4  # alternating, sums to 2*pi... roughly
        assert periodicity(sa, tol) == 4

    def test_aperiodic_string(self, tol):
        assert periodicity([0.1, 0.2, 0.3, 5.68], tol) == 1

    def test_periodicity_is_greatest(self, tol):
        # 8 identical entries: per = 8, not merely 2 or 4.
        assert periodicity([0.785] * 8, tol) == 8

    def test_two_periodic(self, tol):
        sa = [0.5, 1.0, 2.0, 0.5, 1.0, 2.0]
        assert periodicity(sa, tol) == 2

    def test_noise_within_band_tolerated(self, tol):
        noise = tol.eps_angle / 2
        sa = [0.5, 1.0, 0.5 + noise, 1.0 - noise]
        assert periodicity(sa, tol) == 2

    def test_noise_beyond_band_breaks(self, tol):
        sa = [0.5, 1.0, 0.5 + 1e-3, 1.0 - 1e-3]
        assert periodicity(sa, tol) == 1

    def test_rotation_invariance(self, tol):
        base = [0.2, 0.8, 1.1] * 3
        for shift in range(len(base)):
            rotated = base[shift:] + base[:shift]
            assert periodicity(rotated, tol) == 3


class TestAngularResolution:
    def test_far_points_give_static_tolerance(self, tol):
        c = Configuration([Point(5, 0), Point(0, 5)])
        res = angular_resolution(c, O)
        assert res < 10 * tol.eps_angle

    def test_near_center_point_loosens_resolution(self, tol):
        c = Configuration([Point(1e-6, 0), Point(0, 5)])
        res = angular_resolution(c, O)
        assert res > 1e-4  # eps_dist / 1e-6 = 1e-3, capped at 0.05

    def test_cap_applies(self):
        c = Configuration([Point(1e-12, 0), Point(0, 5)])
        assert angular_resolution(c, O) <= 0.05
