"""Unit tests for safe points (Definition 8, Lemmas 4.2-4.3)."""

import math
import random

from repro.core import (
    Configuration,
    classify,
    ConfigClass,
    is_safe_point,
    max_ray_load,
    safe_points,
)
from repro.geometry import Point
from repro.workloads import generate

from ..conftest import regular_ngon

O = Point(0.0, 0.0)


class TestRayLoad:
    def test_no_other_robots(self):
        c = Configuration([O] * 3)
        assert max_ray_load(c, O) == 0

    def test_counts_multiplicity_along_ray(self):
        c = Configuration([O, Point(1, 0), Point(2, 0), Point(2, 0), Point(0, 1)])
        assert max_ray_load(c, O) == 3

    def test_opposite_rays_counted_separately(self):
        c = Configuration([O, Point(1, 0), Point(-1, 0)])
        assert max_ray_load(c, O) == 1

    def test_own_multiplicity_excluded(self):
        c = Configuration([O] * 4 + [Point(1, 0)])
        assert max_ray_load(c, O) == 1


class TestDefinition:
    def test_safe_point_bound(self):
        # n = 6: a ray may hold at most ceil(6/2) - 1 = 2 robots.
        base = [O, Point(0, 5), Point(3, 3)]
        safe = Configuration(base + [Point(1, 0), Point(2, 0), Point(-1, 2)])
        assert is_safe_point(safe, O)
        unsafe = Configuration(
            base + [Point(1, 0), Point(2, 0), Point(3, 0)]
        )  # 3 on one ray
        assert not is_safe_point(unsafe, O)

    def test_polygon_vertices_all_safe(self):
        c = Configuration(regular_ngon(6, radius=2.0))
        assert len(safe_points(c)) == 6

    def test_line_interior_points_unsafe(self):
        # On a line of 5 distinct robots the off-median endpoints see
        # >= ceil(5/2) = 3 robots down one ray.
        pts = [Point(t, 0) for t in range(5)]
        c = Configuration(pts)
        assert not is_safe_point(c, Point(0, 0))
        assert not is_safe_point(c, Point(4, 0))
        assert is_safe_point(c, Point(2, 0))  # the median is safe


class TestLemmas:
    def test_lemma_4_2_nonlinear_has_safe_point(self):
        """Every non-linear configuration contains a safe point."""
        for workload in ("asymmetric", "regular-polygon", "multiple",
                         "qr-occupied-center", "near-bivalent"):
            for seed in range(6):
                c = Configuration(generate(workload, 8, seed))
                if c.is_linear():
                    continue
                assert safe_points(c), f"{workload} seed {seed}"

    def test_lemma_4_3_bivalent_has_none(self):
        for seed in range(6):
            c = Configuration(generate("bivalent", 8, seed))
            assert safe_points(c) == []

    def test_lemma_4_3_l2w_has_none(self):
        for seed in range(6):
            c = Configuration(generate("linear-interval", 8, seed))
            assert classify(c) is ConfigClass.LINEAR_MANY_WEBER
            assert safe_points(c) == []

    def test_unsafe_ray_workload_target_is_unsafe(self):
        for seed in range(4):
            pts = generate("unsafe-ray", 8, seed)
            c = Configuration(pts)
            target = c.max_multiplicity_points()[0]
            assert not is_safe_point(c, target)
