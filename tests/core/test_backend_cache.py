"""Regression: configuration memos must not survive a backend switch.

``Configuration._cache`` holds everything the classification tower
memoizes (ray loads, safe points, views, Weber points).  Those values
are computed by whichever kernel backend is active at first call; the
two backends agree to tolerance but not necessarily to the bit, so a
memo warmed under one backend leaking into a run under the other would
silently break bit-reproducibility — exactly the situation of
``repro check --backend both`` replaying one shared trace, or a live
batched-engine config cache spanning a ``REPRO_BACKEND`` flip.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core import Configuration, classify, safe_points
from repro.core.safe_points import all_max_ray_loads
from repro.experiments.runner import Scenario, run_scenario
from repro.geometry import kernels
from repro.resilience.journal import result_to_dict
from repro.workloads import generate

pytestmark = pytest.mark.skipif(
    "numpy" not in kernels.available_backends(),
    reason="needs both kernel backends to switch between",
)

# Big enough that kernels.enabled_for() is true and the numpy paths run.
POINTS = generate("asymmetric", 12, seed=3)


class TestMemoInvalidation:
    def test_flip_clears_warm_memos(self):
        config = Configuration(POINTS)
        with kernels.backend("python"):
            safe_points(config)
            assert config.memo_get("safe_points") is not None
            assert config.memo_get("ray_loads") is not None
        with kernels.backend("numpy"):
            # The python-backend memos must be gone, not served stale.
            assert config.memo_get("safe_points") is None
            assert config.memo_get("ray_loads") is None

    def test_flipped_config_matches_fresh_config_bitwise(self):
        config = Configuration(POINTS)
        with kernels.backend("python"):
            safe_points(config)
            classify(config)
        with kernels.backend("numpy"):
            # A config whose memos were warmed under python, then
            # flipped, must produce exactly what a fresh config computes
            # under numpy.
            fresh = Configuration(POINTS)
            assert safe_points(config) == safe_points(fresh)
            assert all_max_ray_loads(config) == all_max_ray_loads(fresh)
            assert classify(config) == classify(fresh)

    def test_memo_survives_within_one_backend(self):
        # The invalidation must not break memoization itself.
        config = Configuration(POINTS)
        with kernels.backend("python"):
            sentinel = object()
            config.memo("probe", lambda: sentinel)
            assert config.memo("probe", lambda: object()) is sentinel


class TestRunLevelBitIdentity:
    """Flipping REPRO_BACKEND between runs in one process must give the
    same bits as fresh processes pinned to each backend."""

    SCENARIO = Scenario(
        workload="asymmetric",
        n=12,
        f=1,
        scheduler="round-robin",
        crashes="after-move",
        movement="rigid",
        max_rounds=2_000,
    )

    def _fresh_process_result(self, backend: str) -> dict:
        code = (
            "import json, sys\n"
            "from repro.experiments.runner import Scenario, run_scenario\n"
            "from repro.resilience.journal import result_to_dict\n"
            f"scenario = Scenario.from_dict({self.SCENARIO.to_dict()!r})\n"
            "result = run_scenario(scenario, 0)\n"
            "print(json.dumps(result_to_dict(result)))\n"
        )
        env = dict(os.environ, REPRO_BACKEND=backend)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout)

    def test_backend_flips_match_fresh_processes(self):
        flipped = {}
        # One process, alternating backends — the exact pattern that PR
        # 6's memo caches could poison across the switch.
        for backend in ("python", "numpy", "python", "numpy"):
            with kernels.backend(backend):
                flipped[backend] = result_to_dict(
                    run_scenario(self.SCENARIO, 0)
                )
        for backend in ("python", "numpy"):
            assert flipped[backend] == self._fresh_process_result(backend), (
                f"in-process {backend} run after backend flips diverged "
                f"from a fresh {backend}-pinned process"
            )
