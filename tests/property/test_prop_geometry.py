"""Property-based tests for the geometry substrate (hypothesis)."""

import math

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.geometry import (
    TWO_PI,
    Frame,
    Point,
    clockwise_angle,
    convex_hull,
    in_convex_hull,
    normalize_angle,
    rotate_clockwise,
    smallest_enclosing_circle,
)

finite = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, finite, finite)
point_lists = st.lists(points, min_size=1, max_size=12)
angles = st.floats(min_value=-20.0, max_value=20.0)


@given(angles)
def test_normalize_angle_in_range(theta):
    v = normalize_angle(theta)
    assert 0.0 <= v < TWO_PI


@given(angles, angles)
def test_normalize_additive_mod_two_pi(a, b):
    lhs = normalize_angle(normalize_angle(a) + normalize_angle(b))
    rhs = normalize_angle(a + b)
    diff = abs(lhs - rhs)
    assert min(diff, TWO_PI - diff) < 1e-9


@given(points, points, st.floats(min_value=0.0, max_value=6.28))
def test_rotation_preserves_radius(p, center, theta):
    q = rotate_clockwise(p, center, theta)
    assert math.isclose(
        center.distance_to(p), center.distance_to(q), rel_tol=1e-9, abs_tol=1e-9
    )


@given(points, points, points)
def test_clockwise_angle_antisymmetry(u, apex, v):
    assume(u.distance_to(apex) > 1e-6 and v.distance_to(apex) > 1e-6)
    a = clockwise_angle(u, apex, v)
    b = clockwise_angle(v, apex, u)
    total = a + b
    assert (
        abs(total) < 1e-6
        or abs(total - TWO_PI) < 1e-6
    )


@given(point_lists)
def test_sec_covers_all_points(pts):
    circle = smallest_enclosing_circle(pts)
    for p in pts:
        assert circle.center.distance_to(p) <= circle.radius + 1e-7


@given(point_lists)
def test_sec_radius_at_most_diameter_bound(pts):
    # The SEC radius never exceeds half the diameter times 2/sqrt(3)
    # (Jung's theorem for the plane).
    circle = smallest_enclosing_circle(pts)
    diameter = max(
        (a.distance_to(b) for a in pts for b in pts), default=0.0
    )
    assert circle.radius <= diameter / math.sqrt(3.0) + 1e-7


@given(point_lists)
def test_hull_contains_all_points(pts):
    for p in pts:
        assert in_convex_hull(p, pts)


@given(point_lists)
def test_hull_vertices_are_input_points(pts):
    hull = convex_hull(pts)
    assert all(h in pts for h in hull)


@given(
    points,
    st.floats(min_value=-3.0, max_value=3.0),
    st.floats(min_value=0.1, max_value=10.0),
    points,
)
def test_frame_roundtrip(origin, theta, scale, p):
    frame = Frame(origin=origin, theta=theta, scale=scale)
    q = frame.to_global(frame.to_local(p))
    assert q.distance_to(p) < 1e-6


@given(
    st.floats(min_value=-3.0, max_value=3.0),
    st.floats(min_value=0.1, max_value=10.0),
    points,
    points,
    points,
)
def test_frames_preserve_clockwise_angles(theta, scale, u, apex, v):
    assume(u.distance_to(apex) > 1e-3 and v.distance_to(apex) > 1e-3)
    frame = Frame(origin=Point(1.0, -1.0), theta=theta, scale=scale)
    original = clockwise_angle(u, apex, v)
    framed = clockwise_angle(
        frame.to_local(u), frame.to_local(apex), frame.to_local(v)
    )
    diff = abs(original - framed)
    assert min(diff, TWO_PI - diff) < 1e-6
