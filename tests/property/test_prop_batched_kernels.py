"""Sims-axis kernels == per-sim 2-D kernels, elementwise.

The batched engine's correctness argument rests on each sims-axis
kernel replicating its 2-D twin per sim *including under ragged
padding* — padded entries must be inert (no cluster bridged, no sum
touched, no sort disturbed).  These sweeps build batches of deliberately
mixed sizes so every call exercises non-trivial padding, then compare
against one 2-D call per sim.

``batched_weiszfeld`` is the one kernel allowed to diverge: its sums
are masked-to-zero rather than compressed, which can round differently
only when a point lies within ``eps_solver`` of an iterate.  The sweep
therefore asserts exact equality of the iterate and the iteration count
on the generated workloads (none of which trip that corner), while the
engine-level equivalence suite covers the re-certification fallback.
"""

import random

import pytest

from repro.core.configuration import Configuration
from repro.core.safe_points import _max_ray_loads_python, max_ray_load
from repro.geometry import DEFAULT_TOLERANCE, kernels
from repro.workloads import generate

pytestmark = pytest.mark.skipif(
    "numpy" not in kernels.available_backends(),
    reason="NumPy not importable in this environment",
)

TOL = DEFAULT_TOLERANCE

# Mixed sizes per batch: padding is always ragged.
BATCHES = [
    [("random", 5, 1), ("random", 9, 2), ("asymmetric", 16, 3)],
    [("multiple", 8, 1), ("regular-polygon", 12, 2), ("random", 31, 5)],
    [("linear-unique", 5, 4), ("near-bivalent", 8, 1), ("random", 48, 7)],
    [("biangular", 6, 2), ("unsafe-ray", 16, 3), ("bivalent", 8, 1)],
]


def _configs(cases):
    return [Configuration(generate(w, n, s)) for w, n, s in cases]


@pytest.mark.parametrize("cases", BATCHES)
def test_batched_max_ray_loads_matches_2d(cases):
    configs = _configs(cases)
    supports = [[(p.x, p.y) for p in c.support] for c in configs]
    mults = [[c.mult(p) for p in c.support] for c in configs]
    batched = kernels.batched_max_ray_loads(
        supports, mults, TOL.eps_dist, TOL.eps_angle, 0.05
    )
    for sup, mu, got in zip(supports, mults, batched):
        expected = kernels.max_ray_loads(
            sup, mu, TOL.eps_dist, TOL.eps_angle, 0.05
        )
        assert got == expected


def test_batched_max_ray_loads_chunking_is_invisible(monkeypatch):
    """Slab seams must not change results (budget forced tiny)."""
    cases = BATCHES[0] + BATCHES[1]
    configs = _configs(cases)
    supports = [[(p.x, p.y) for p in c.support] for c in configs]
    mults = [[c.mult(p) for p in c.support] for c in configs]
    whole = kernels.batched_max_ray_loads(
        supports, mults, TOL.eps_dist, TOL.eps_angle, 0.05
    )
    monkeypatch.setattr(kernels, "_BATCH_RAY_BUDGET", 1)
    sliced = kernels.batched_max_ray_loads(
        supports, mults, TOL.eps_dist, TOL.eps_angle, 0.05
    )
    assert sliced == whole


@pytest.mark.parametrize("cases", BATCHES)
def test_batched_polar_views_matches_2d(cases):
    configs = _configs(cases)
    # Uniform robot count is required along the points axis; replicate
    # each sim's multiset to the batch maximum like the engine does not
    # need to (it batches same-round sims individually) — instead build
    # one batch per robot count.
    by_n = {}
    for c in configs:
        by_n.setdefault(c.n, []).append(c)
    for group in by_n.values():
        origins = []
        points = []
        centers = []
        for c in group:
            center = c.sec_center()
            noncentral = [
                p for p in c.support if not p.close_to(center, c.tol)
            ]
            if not noncentral:
                continue
            origins.append([(p.x, p.y) for p in noncentral])
            points.append([(p.x, p.y) for p in c.points])
            centers.append((center.x, center.y))
        if not origins:
            continue
        batched = kernels.batched_polar_views(
            origins, points, centers, TOL.eps_dist, TOL.eps_angle
        )
        for o, p, ctr, got in zip(origins, points, centers, batched):
            expected = kernels.batch_polar_views(
                o, p, ctr, TOL.eps_dist, TOL.eps_angle
            )
            assert got == expected


def test_batched_weiszfeld_matches_2d():
    rng = random.Random(7)
    sets = []
    for _ in range(12):
        pts = [
            (rng.uniform(-50, 50), rng.uniform(-50, 50)) for _ in range(9)
        ]
        sets.append(pts)
    starts = [
        (sum(x for x, _ in pts) / len(pts), sum(y for _, y in pts) / len(pts))
        for pts in sets
    ]
    batched = kernels.batched_weiszfeld(sets, starts, TOL.eps_solver, 10_000)
    for pts, start, got in zip(sets, starts, batched):
        expected = kernels.weiszfeld(pts, start, TOL.eps_solver, 10_000)
        assert got == expected  # iterate AND iteration count


def test_batched_gather_candidates_never_false_negative():
    rng = random.Random(3)
    positions = []
    live = []
    gathered_truth = []
    for s in range(40):
        n = rng.randrange(3, 9)
        if s % 2:
            # Gathered cluster, some crashed robots scattered far away.
            cx, cy = rng.uniform(-10, 10), rng.uniform(-10, 10)
            row = [
                (cx + rng.uniform(-1e-10, 1e-10),
                 cy + rng.uniform(-1e-10, 1e-10))
                for _ in range(n)
            ]
            lv = [True] * n
            for dead in range(rng.randrange(0, 2)):
                row[dead] = (cx + 30 + dead, cy)
                lv[dead] = False
            truth = any(lv)
        else:
            row = [
                (rng.uniform(-10, 10), rng.uniform(-10, 10))
                for _ in range(n)
            ]
            lv = [True] * n
            truth = False
        row += [(0.0, 0.0)] * (9 - n)
        lv += [False] * (9 - n)
        positions.append(row)
        live.append(lv)
        gathered_truth.append(truth)
    flags = kernels.batched_gather_candidates(
        positions, live, TOL.eps_dist
    )
    for flag, truth in zip(flags, gathered_truth):
        if truth:
            assert flag  # the prefilter may not drop a gathered sim
        # non-gathered sims may be (conservative) candidates; the engine
        # re-checks with the exact scalar predicate.


@pytest.mark.parametrize(
    "workload,n,seed",
    [
        ("random", 9, 1),
        ("asymmetric", 16, 2),
        ("multiple", 8, 3),
        ("regular-polygon", 12, 1),
        ("unsafe-ray", 16, 2),
        ("near-bivalent", 8, 1),
    ],
)
def test_python_bulk_ray_loads_matches_reference(workload, n, seed):
    """S2: the cached python bulk path == per-center ``max_ray_load``."""
    config = Configuration(generate(workload, n, seed))
    bulk = _max_ray_loads_python(config)
    reference = [
        max_ray_load(Configuration(config.points), p)
        for p in config.support
    ]
    assert bulk == reference
