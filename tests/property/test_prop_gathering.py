"""The headline property: Theorem 5.1 as a hypothesis test.

Random configurations, random crash schedules, random activation
patterns, random move interruptions — every combination must end with
the correct robots gathered, unless the start is bivalent.
"""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.algorithms import WaitFreeGather
from repro.core import ConfigClass, Configuration, classify
from repro.geometry import Point
from repro.sim import (
    RandomCrashes,
    RandomStop,
    RandomSubset,
    RoundRobin,
    Simulation,
)

coords = st.floats(min_value=0.0, max_value=20.0, allow_nan=False)
points = st.builds(Point, coords, coords)
clouds = st.lists(points, min_size=3, max_size=9)

run_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    derandomize=True,
)


@run_settings
@given(
    clouds,
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=0, max_value=10_000),
)
def test_theorem_5_1_random_everything(pts, crash_budget, seed):
    config = Configuration(pts)
    assume(classify(config) is not ConfigClass.BIVALENT)
    f = min(crash_budget, len(pts) - 1)
    result = Simulation(
        WaitFreeGather(),
        pts,
        scheduler=RandomSubset(0.5),
        crash_adversary=RandomCrashes(f=f, rate=0.3),
        movement=RandomStop(0.05),
        seed=seed,
        max_rounds=20_000,
    ).run()
    assert result.gathered, result.verdict


@run_settings
@given(clouds, st.integers(min_value=0, max_value=10_000))
def test_round_robin_fault_free(pts, seed):
    config = Configuration(pts)
    assume(classify(config) is not ConfigClass.BIVALENT)
    result = Simulation(
        WaitFreeGather(),
        pts,
        scheduler=RoundRobin(),
        seed=seed,
        max_rounds=20_000,
    ).run()
    assert result.gathered, result.verdict


@run_settings
@given(clouds)
def test_bivalent_never_reached(pts):
    """No execution from a non-bivalent start ever visits class B."""
    config = Configuration(pts)
    assume(classify(config) is not ConfigClass.BIVALENT)
    visited = []

    def observe(record):
        visited.append(classify(record.config_after))

    sim = Simulation(
        WaitFreeGather(),
        pts,
        scheduler=RandomSubset(0.6),
        crash_adversary=RandomCrashes(f=len(pts) - 1, rate=0.25),
        movement=RandomStop(0.1),
        seed=7,
        max_rounds=20_000,
    )
    sim.add_observer(observe)
    result = sim.run()
    assert result.gathered
    assert ConfigClass.BIVALENT not in visited
