"""Property-based tests for Weber point machinery.

The two properties the algorithm's correctness leans on:

* the numerical solver's answers satisfy the exact subgradient
  certificate and beat any sampled competitor;
* Lemma 3.2 — moving points towards the Weber point never moves it.
"""

import math

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.geometry import (
    Point,
    geometric_median,
    is_weber_point,
    linear_weber_interval,
    sum_of_distances,
)

coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
points = st.builds(Point, coords, coords)
clouds = st.lists(points, min_size=1, max_size=10)
fractions = st.lists(
    st.floats(min_value=0.0, max_value=0.95), min_size=10, max_size=10
)


@given(clouds)
def test_median_is_certified(pts):
    result = geometric_median(pts)
    assert result.certified


@given(clouds, points)
def test_median_beats_arbitrary_competitor(pts, competitor):
    result = geometric_median(pts)
    assert result.objective <= sum_of_distances(competitor, pts) + 1e-6


@given(clouds)
def test_median_beats_every_input_point(pts):
    result = geometric_median(pts)
    best_input = min(sum_of_distances(p, pts) for p in pts)
    assert result.objective <= best_input + 1e-6


@given(clouds, fractions)
def test_lemma_3_2_invariance(pts, ts):
    """Moving any subset of points towards the Weber point keeps it.

    Lemma 3.2 presumes a *unique* Weber point, so collinear inputs
    (whose Weber points form the median interval) are excluded — for
    them the solver's representative (the interval midpoint) is not
    stable under partial moves, which is exactly why the paper treats
    L2W separately.
    """
    from repro.geometry import all_collinear

    assume(not all_collinear(pts))
    result = geometric_median(pts)
    assume(result.certified)
    moved = [
        p + (result.point - p) * t for p, t in zip(pts, ts)
    ]
    again = geometric_median(moved)
    assume(again.certified)
    # Degenerate collapses (all points merging) keep the point as well;
    # tolerance covers solver precision on both solves.
    assert again.point.distance_to(result.point) < 1e-5


@given(st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=12))
def test_linear_interval_matches_order_statistics(ts):
    pts = [Point(t, 0.0) for t in ts]
    lo, hi = linear_weber_interval(pts)
    ordered = sorted(ts)
    n = len(ordered)
    assert math.isclose(lo.x, ordered[(n - 1) // 2], abs_tol=1e-9)
    assert math.isclose(hi.x, ordered[n // 2], abs_tol=1e-9)


@given(st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=12))
def test_linear_interval_is_optimal(ts):
    pts = [Point(t, 0.0) for t in ts]
    lo, hi = linear_weber_interval(pts)
    mid = (lo + hi) / 2
    objective = sum_of_distances(mid, pts)
    for t in (-60.0, -10.0, 0.0, 10.0, 60.0):
        assert objective <= sum_of_distances(Point(t, 0.0), pts) + 1e-9


@given(clouds)
def test_certificate_rejects_far_points(pts):
    result = geometric_median(pts)
    spread = max((a.distance_to(b) for a in pts for b in pts), default=0.0)
    assume(spread > 1.0)
    far = result.point + Point(spread * 10, spread * 10)
    assert not is_weber_point(far, pts)
