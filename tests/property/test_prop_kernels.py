"""Backend equivalence sweeps: numpy kernels == pure-Python reference.

The acceptance contract of the vectorized backend is *semantic
equivalence within the tolerance quantum*: every combinatorial artefact
derived from a configuration (cluster merge, support, multiplicities,
classification, safe points, symmetry, election order) must be
identical under both backends, and every numeric artefact (view radii
and angles, Weber points) must agree to within one quantization step.
Bitwise float equality is deliberately *not* asserted for views:
``np.arctan2``/``np.hypot`` may differ from ``math``'s libm by an ulp
depending on the SIMD path, and the tolerance model exists precisely to
absorb that.

Seeded sweeps rather than Hypothesis: the interesting inputs here are
the structured workload families (biangular, linear, multiplicities),
which the generators already produce; random floats from a strategy
would explore far less of the classification tower per example.
"""

import pytest

from repro.core.classification import classify
from repro.core.configuration import Configuration
from repro.core.election import elect, election_key
from repro.core.safe_points import all_max_ray_loads, max_ray_load, safe_points
from repro.core.views import symmetry, view_table
from repro.geometry import DEFAULT_TOLERANCE, geometric_median, kernels
from repro.workloads import generate

pytestmark = pytest.mark.skipif(
    "numpy" not in kernels.available_backends(),
    reason="NumPy not importable in this environment",
)

# (workload, sizes): every classification branch plus scale.
SWEEP = [
    ("random", [5, 9, 16, 48]),
    ("asymmetric", [5, 9, 16, 48]),
    ("multiple", [5, 9, 16, 48]),
    ("linear-unique", [5, 9, 17, 49]),
    ("linear-interval", [6, 16, 48]),
    ("regular-polygon", [5, 8, 16, 48]),
    ("biangular", [6, 8, 16, 48]),
    ("near-bivalent", [6, 8, 16]),
    ("bivalent", [6, 8, 16]),
    ("unsafe-ray", [8, 16]),
    ("random", [256]),
]

CASES = [
    (workload, n, seed)
    for workload, sizes in SWEEP
    for n in sizes
    for seed in (1, 2)
]


def both_backends(pts):
    """The full derived tower of ``pts`` under each backend."""
    snapshots = {}
    for backend_name in ("python", "numpy"):
        with kernels.backend(backend_name):
            config = Configuration(pts)
            snapshots[backend_name] = {
                "points": config.points,
                "support": config.support,
                "mults": [config.mult(p) for p in config.support],
                "class": classify(config).name,
                "symmetry": symmetry(config),
                "ray_loads": (
                    all_max_ray_loads(config)
                    if backend_name == "numpy"
                    else [max_ray_load(config, p) for p in config.support]
                ),
                "safe": safe_points(config),
                "views": view_table(config),
                "keys": [election_key(config, p) for p in config.support],
            }
    return snapshots["python"], snapshots["numpy"]


@pytest.mark.parametrize("workload,n,seed", CASES)
def test_combinatorial_tower_identical(workload, n, seed):
    pts = generate(workload, n, seed)
    py, np_ = both_backends(pts)
    # The cluster merge is the root of everything downstream: both
    # backends must produce the same representative for every robot.
    assert py["points"] == np_["points"]
    assert py["support"] == np_["support"]
    assert py["mults"] == np_["mults"]
    assert py["class"] == np_["class"]
    assert py["symmetry"] == np_["symmetry"]
    assert py["ray_loads"] == np_["ray_loads"]
    assert py["safe"] == np_["safe"]


@pytest.mark.parametrize("workload,n,seed", CASES)
def test_views_within_one_quantum(workload, n, seed):
    pts = generate(workload, n, seed)
    py, np_ = both_backends(pts)
    tol = DEFAULT_TOLERANCE
    for p in py["support"]:
        va, vb = py["views"][p], np_["views"][p]
        assert len(va) == len(vb)
        for (ra, ta), (rb, tb) in zip(va, vb):
            assert abs(ra - rb) <= tol.eps_dist + 1e-15
            assert abs(ta - tb) <= tol.eps_angle + 1e-15


@pytest.mark.parametrize("workload,n,seed", CASES)
def test_election_order_agrees(workload, n, seed):
    pts = generate(workload, n, seed)
    py, np_ = both_backends(pts)
    tol = DEFAULT_TOLERANCE
    for ka, kb in zip(py["keys"], np_["keys"]):
        assert ka[0] == kb[0]
        # The distance sum is quantized before comparison; the two
        # summation orders may land on adjacent quanta at worst.
        assert abs(ka[1] - kb[1]) <= 2 * tol.eps_dist
    # The elected point itself must coincide on asymmetric inputs where
    # safe points exist (the case the algorithm relies on).
    with kernels.backend("python"):
        config = Configuration(pts)
        safe = safe_points(config)
        winner_py = elect(config, safe) if safe else None
    with kernels.backend("numpy"):
        config = Configuration(pts)
        safe = safe_points(config)
        winner_np = elect(config, safe) if safe else None
    assert winner_py == winner_np


@pytest.mark.parametrize(
    "workload,n,seed",
    [(w, n, s) for w, sizes in SWEEP[:7] for n in sizes[:2] for s in (1,)],
)
def test_weber_certificates_agree(workload, n, seed):
    pts = generate(workload, n, seed)
    with kernels.backend("python"):
        result_py = geometric_median(pts)
    with kernels.backend("numpy"):
        result_np = geometric_median(pts)
    assert result_py.certified == result_np.certified
    assert (
        result_py.point.distance_to(result_np.point)
        <= DEFAULT_TOLERANCE.eps_dist
    )


@pytest.mark.parametrize("scheduler", ["fsync", "random"])
def test_full_simulation_verdicts_agree(scheduler):
    """End-to-end: whole runs reach the same verdict on both backends.

    Round trajectories may diverge bitwise after many quantization
    steps, so the assertion is on the contract that matters: the
    verdict and the gathering outcome.
    """
    from repro.experiments.runner import Scenario, run_scenario

    scenario = Scenario(
        workload="asymmetric", n=9, f=2, scheduler=scheduler, max_rounds=5_000
    )
    with kernels.backend("python"):
        result_py = run_scenario(scenario, seed=3)
    with kernels.backend("numpy"):
        result_np = run_scenario(scenario, seed=3)
    assert result_py.verdict == result_np.verdict
