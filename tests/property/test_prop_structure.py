"""Property-based tests for the configuration-calculus structures.

These synthesize configurations with *known* structure (rotational
symmetry of a chosen order, angular periodicity of a chosen period,
deliberate deficiencies covered by center wildcards) and require the
detectors to recover exactly that structure — the constructive converse
of the example-based unit tests.
"""

import math

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core import (
    Configuration,
    classify,
    ConfigClass,
    periodicity,
    quasi_regularity,
    regularity,
    string_of_angles,
    symmetry,
)
from repro.geometry import DEFAULT_TOLERANCE, Point

TOL = DEFAULT_TOLERANCE

orders = st.integers(min_value=2, max_value=7)
radii = st.floats(min_value=0.5, max_value=8.0)
phases = st.floats(min_value=0.0, max_value=2.0 * math.pi)
centers = st.tuples(
    st.floats(min_value=-20, max_value=20),
    st.floats(min_value=-20, max_value=20),
)


def rotate_about(p: Point, c: Point, theta: float) -> Point:
    dx, dy = p.x - c.x, p.y - c.y
    cos, sin = math.cos(theta), math.sin(theta)
    return Point(c.x + cos * dx - sin * dy, c.y + sin * dx + cos * dy)


@given(orders, radii, phases, centers)
def test_synthesized_rotational_symmetry_detected(k, radius, phase, center_xy):
    """A k-fold rotation orbit has sym exactly k."""
    center = Point(*center_xy)
    seedling = Point(center.x + radius * math.cos(phase),
                     center.y + radius * math.sin(phase))
    pts = [
        rotate_about(seedling, center, 2.0 * math.pi * i / k)
        for i in range(k)
    ]
    config = Configuration(pts)
    assert symmetry(config) == k


@given(orders, radii, phases, centers, st.integers(0, 3))
def test_two_orbit_configuration_symmetry(k, radius, phase, center_xy, extra):
    """Two concentric k-orbits (different radii, same phase offset)
    still have symmetry exactly k."""
    center = Point(*center_xy)
    pts = []
    for ring, r in enumerate((radius, radius * 2.0 + 0.7)):
        seedling = Point(
            center.x + r * math.cos(phase + 0.3 * ring),
            center.y + r * math.sin(phase + 0.3 * ring),
        )
        pts.extend(
            rotate_about(seedling, center, 2.0 * math.pi * i / k)
            for i in range(k)
        )
    config = Configuration(pts)
    assert symmetry(config) == k


@given(
    orders,
    st.lists(radii, min_size=2, max_size=4),
    st.lists(st.floats(min_value=0.15, max_value=1.2), min_size=2, max_size=4),
    centers,
)
def test_synthesized_angular_periodicity_detected(m, ring_radii, gaps, center_xy):
    """Rays whose angular pattern repeats m times are regular with
    period (a multiple of) m, regardless of the radii."""
    center = Point(*center_xy)
    sector = 2.0 * math.pi / m
    total = sum(gaps)
    assume(total < sector * 0.98)
    # Normalize the gap pattern into one sector, then replicate m times.
    angles = []
    a = 0.17
    for gap in gaps:
        angles.append(a)
        a += gap * (sector * 0.9) / total
    pts = []
    for i in range(m):
        for j, ang in enumerate(angles):
            r = ring_radii[j % len(ring_radii)]
            theta = ang + i * sector
            pts.append(
                Point(center.x + r * math.cos(theta),
                      center.y + r * math.sin(theta))
            )
    config = Configuration(pts)
    assume(not config.is_linear())
    result = regularity(config)
    assert result.is_regular
    assert result.m % m == 0 or result.m == m * len(angles), (
        f"period {result.m} not a multiple of {m}"
    )
    assert result.m >= m
    assert result.center.distance_to(center) < 1e-5


@given(orders, radii, phases, centers)
def test_polygon_plus_center_wildcard_is_quasi_regular(k, radius, phase, c_xy):
    """A k-gon with one vertex removed and a robot at the center is
    quasi-regular: the wildcard completes the missing slot."""
    assume(k >= 3)
    center = Point(*c_xy)
    pts = [center]
    for i in range(1, k):  # drop vertex 0
        theta = phase + 2.0 * math.pi * i / k
        pts.append(
            Point(center.x + radius * math.cos(theta),
                  center.y + radius * math.sin(theta))
        )
    config = Configuration(pts)
    assume(not config.is_linear())
    qr = quasi_regularity(config)
    assert qr.is_quasi_regular
    assert qr.center.distance_to(center) < 1e-6
    assert qr.m >= k or qr.m % k == 0 or k % qr.m == 0


@given(st.lists(st.floats(min_value=0.05, max_value=2.0), min_size=1, max_size=6),
       st.integers(min_value=2, max_value=5))
def test_periodicity_of_replicated_strings(block, k):
    """per(x^k) is a multiple of k for any angle block x."""
    sa = block * k
    per = periodicity(sa, TOL)
    assert per % k == 0 or per == len(sa)
    assert per >= k


@given(st.lists(st.floats(min_value=0.05, max_value=2.0), min_size=2, max_size=8))
def test_periodicity_at_most_length(sa):
    assert 1 <= periodicity(sa, TOL) <= len(sa)
