"""Property: trace serialization is an exact round trip.

Python serializes floats via ``repr``, which round-trips ``float64``
bit for bit — so a trace archived to JSON must restore to *equal*
records, including pathological coordinates (subnormals, huge
magnitudes, long decimal tails) that truncating serializers corrupt.
"""

from hypothesis import given, strategies as st

from repro.core import ConfigClass, Configuration
from repro.geometry import Point
from repro.sim import RoundRecord, Trace, TraceMeta

finite = st.floats(
    allow_nan=False,
    allow_infinity=False,
    min_value=-1e12,
    max_value=1e12,
)

points = st.builds(Point, finite, finite)


@st.composite
def round_records(draw, index=0):
    n = draw(st.integers(min_value=1, max_value=6))
    before = draw(st.lists(points, min_size=n, max_size=n))
    after = draw(st.lists(points, min_size=n, max_size=n))
    active = draw(st.lists(st.integers(0, n - 1), unique=True, max_size=n))
    dests = {rid: draw(points) for rid in active}
    return RoundRecord(
        round_index=index,
        config_before=Configuration(before),
        config_class=draw(st.sampled_from(list(ConfigClass))),
        active=tuple(sorted(active)),
        crashed_now=tuple(
            sorted(draw(st.lists(st.integers(0, n - 1), unique=True, max_size=2)))
        ),
        destinations=dests,
        config_after=Configuration(after),
        moved=tuple(sorted(active)),
    )


@given(st.data())
def test_trace_json_round_trip_is_exact(data):
    n_records = data.draw(st.integers(min_value=0, max_value=4))
    trace = Trace(
        meta=TraceMeta(
            scenario=None,
            seed=data.draw(st.integers(0, 2**31)),
            engine_seed=data.draw(st.integers(0, 2**31)),
            backend="python",
            package_version="test",
            tolerance=(1e-9, 1e-9, 1e-13),
        )
    )
    for i in range(n_records):
        trace.append(data.draw(round_records(index=i)))

    restored = Trace.from_json(trace.to_json())

    assert restored.meta == trace.meta
    assert len(restored) == len(trace)
    for exp, act in zip(trace, restored):
        assert exp.round_index == act.round_index
        assert exp.config_class is act.config_class
        assert exp.active == act.active
        assert exp.crashed_now == act.crashed_now
        assert exp.moved == act.moved
        # Exact coordinate identity, not tolerant closeness.
        assert [p.as_tuple() for p in exp.config_before.points] == [
            p.as_tuple() for p in act.config_before.points
        ]
        assert [p.as_tuple() for p in exp.config_after.points] == [
            p.as_tuple() for p in act.config_after.points
        ]
        assert {r: d.as_tuple() for r, d in exp.destinations.items()} == {
            r: d.as_tuple() for r, d in act.destinations.items()
        }


@given(st.integers(0, 2**31 - 1))
def test_destination_keys_restore_as_ints(seed):
    record = RoundRecord(
        round_index=0,
        config_before=Configuration([Point(0.0, 0.0), Point(1.0, 0.0)]),
        config_class=ConfigClass.ASYMMETRIC,
        active=(0, 1),
        crashed_now=(),
        destinations={0: Point(0.5, 0.0), 1: Point(0.5, 0.0)},
        config_after=Configuration([Point(0.5, 0.0), Point(0.5, 0.0)]),
        moved=(0, 1),
    )
    trace = Trace(records=[record])
    restored = Trace.from_json(trace.to_json())
    assert set(restored.records[0].destinations) == {0, 1}
    assert all(
        isinstance(k, int) for k in restored.records[0].destinations
    )
