"""Property-based tests on the classification tower."""

import math
import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    ConfigClass,
    Configuration,
    classify,
    destination_map,
    safe_points,
    symmetry,
)
from repro.geometry import Point, random_frame

coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
points = st.builds(Point, coords, coords)
clouds = st.lists(points, min_size=2, max_size=10)

# Allow occasional duplicates to exercise multiplicities.
index_pairs = st.tuples(st.integers(0, 9), st.integers(0, 9))


def with_duplicates(pts, pairs):
    out = list(pts)
    for src, dst in pairs:
        if src < len(out) and dst < len(out):
            out[dst] = out[src]
    return out


@given(clouds, st.lists(index_pairs, max_size=3))
def test_classification_total(pts, pairs):
    config = Configuration(with_duplicates(pts, pairs))
    assert isinstance(classify(config), ConfigClass)


@given(clouds, st.lists(index_pairs, max_size=3))
def test_partition_consistency(pts, pairs):
    """Cross-check each class label against its defining predicate."""
    config = Configuration(with_duplicates(pts, pairs))
    cls = classify(config)
    tops = config.max_multiplicity_points()
    if cls is ConfigClass.BIVALENT:
        assert len(config.support) == 2
        assert config.mult(config.support[0]) == config.mult(config.support[1])
    elif cls is ConfigClass.MULTIPLE:
        assert len(tops) == 1
    else:
        assert len(tops) > 1
        if cls in (
            ConfigClass.LINEAR_UNIQUE_WEBER,
            ConfigClass.LINEAR_MANY_WEBER,
        ):
            assert config.is_linear()
        else:
            assert not config.is_linear()


@given(clouds)
def test_lemma_4_2_nonlinear_has_safe_point(pts):
    config = Configuration(pts)
    assume(not config.is_linear())
    assert safe_points(config)


@given(clouds, st.lists(index_pairs, max_size=3))
def test_wait_freedom_on_arbitrary_configs(pts, pairs):
    """Lemma 5.1 holds at every non-bivalent configuration whatsoever."""
    config = Configuration(with_duplicates(pts, pairs))
    assume(classify(config) is not ConfigClass.BIVALENT)
    stays = [
        p
        for p, d in destination_map(config).items()
        if d.close_to(p, config.tol)
    ]
    assert len(stays) <= 1


@given(clouds, st.integers(0, 100))
def test_classification_frame_invariant(pts, frame_seed):
    config = Configuration(pts)
    cls = classify(config)
    frame = random_frame(random.Random(frame_seed))
    framed = Configuration([frame.to_local(p) for p in pts])
    assert classify(framed) is cls


@given(clouds)
def test_symmetry_at_least_one(pts):
    assert symmetry(Configuration(pts)) >= 1


@given(clouds, st.lists(index_pairs, max_size=3))
def test_destinations_are_deterministic(pts, pairs):
    config1 = Configuration(with_duplicates(pts, pairs))
    config2 = Configuration(with_duplicates(pts, pairs))
    assume(classify(config1) is not ConfigClass.BIVALENT)
    assert destination_map(config1) == destination_map(config2)
