"""Smoke tests for the JSON benchmark harness (not a benchmark run)."""

import json

import pytest

from repro.bench import (
    HISTORY_SCHEMA,
    SCHEMA,
    check_regressions,
    load_history,
    run_bench,
    write_bench,
)
from repro.geometry import kernels


def _doc(micro_s=0.010, round_s=0.100, batch_seed_s=0.001, lcm_cycle_s=0.050,
         serve_warm_s=0.001, generated_at="2026-01-01T00:00:00"):
    """A minimal one-key bench document with controllable timings."""
    return {
        "schema": SCHEMA,
        "generated_at": generated_at,
        "micro": [
            {"name": "safe_points", "backend": "python", "n": 16,
             "best_s": micro_s, "mean_s": micro_s},
        ],
        "round_throughput": [
            {"backend": "python", "n": 16, "round_s": round_s,
             "robots_per_s": 16 / round_s},
        ],
        "batch_round_throughput": [
            {"backend": "numpy", "n": 16, "n_sims": 256,
             "round_s": batch_seed_s * 256,
             "per_seed_round_s": batch_seed_s,
             "seed_rounds_per_s": 1.0 / batch_seed_s},
        ],
        "lcm_round_throughput": [
            {"activation": "async", "backend": "python", "n": 16,
             "cycle_s": lcm_cycle_s, "robots_per_s": 16 / lcm_cycle_s},
        ],
        "serve_request_latency": [
            {"endpoint": "run", "n": 6, "cold_s": 0.050,
             "warm_s": serve_warm_s, "warm_mean_s": serve_warm_s,
             "repeats": 5, "speedup": 0.050 / serve_warm_s},
        ],
    }


def _history(*docs):
    return {
        "schema": HISTORY_SCHEMA,
        "latest": docs[-1] if docs else None,
        "runs": [
            {"git_sha": None, "recorded_at": d["generated_at"], "document": d}
            for d in docs
        ],
    }


class TestBenchDocument:
    def test_schema_and_sections(self, tmp_path):
        document = run_bench(sizes=[8], repeats=1)
        assert document["schema"] == SCHEMA
        assert document["sizes"] == [8]
        names = {entry["name"] for entry in document["micro"]}
        assert names == {
            "configuration",
            "view_table",
            "safe_points",
            "geometric_median",
        }
        for entry in document["micro"]:
            assert entry["best_s"] > 0.0
            assert entry["backend"] in kernels.available_backends()
        for entry in document["round_throughput"]:
            assert entry["robots_per_s"] > 0.0
        # LCM-cycle section: both activation models measured, on the
        # python backend (the scalar unified loop).
        activations = {
            entry["activation"] for entry in document["lcm_round_throughput"]
        }
        assert activations == {"atom", "async"}
        for entry in document["lcm_round_throughput"]:
            assert entry["backend"] == "python"
            assert entry["cycle_s"] > 0.0
        # Serve latency section: present, and the warm cache hit is
        # strictly cheaper than the cold simulating request.
        for entry in document["serve_request_latency"]:
            assert entry["endpoint"] == "run"
            assert 0.0 < entry["warm_s"] < entry["cold_s"]

        path = tmp_path / "bench.json"
        write_bench(document, str(path))
        payload = json.loads(path.read_text())
        assert payload["schema"] == HISTORY_SCHEMA
        assert payload["latest"]["schema"] == SCHEMA

    def test_two_writes_keep_both_history_entries(self, tmp_path):
        path = tmp_path / "bench.json"
        first = {"schema": SCHEMA, "generated_at": "2026-01-01T00:00:00"}
        second = {"schema": SCHEMA, "generated_at": "2026-01-02T00:00:00"}
        write_bench(first, str(path))
        write_bench(second, str(path))
        payload = json.loads(path.read_text())
        assert payload["schema"] == HISTORY_SCHEMA
        assert len(payload["runs"]) == 2
        assert payload["latest"] == second
        stamps = [run["recorded_at"] for run in payload["runs"]]
        assert stamps == ["2026-01-01T00:00:00", "2026-01-02T00:00:00"]

    def test_legacy_single_document_becomes_first_entry(self, tmp_path):
        path = tmp_path / "bench.json"
        legacy = {"schema": SCHEMA, "generated_at": "2025-12-31T00:00:00"}
        path.write_text(json.dumps(legacy))
        fresh = {"schema": SCHEMA, "generated_at": "2026-01-01T00:00:00"}
        write_bench(fresh, str(path))
        payload = json.loads(path.read_text())
        assert len(payload["runs"]) == 2
        assert payload["runs"][0]["document"] == legacy
        assert payload["runs"][0]["git_sha"] is None
        assert payload["latest"] == fresh

    def test_foreign_file_fails_loudly(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError):
            load_history(str(path))
        with pytest.raises(ValueError):
            write_bench({"schema": SCHEMA}, str(path))

    def test_check_within_threshold_passes(self):
        history = _history(_doc(), _doc())
        assert check_regressions(history, _doc(micro_s=0.011)) == []

    def test_check_flags_all_metric_kinds(self):
        history = _history(_doc())
        regressions = check_regressions(
            history,
            _doc(micro_s=0.050, round_s=0.500, batch_seed_s=0.005,
                 lcm_cycle_s=0.250, serve_warm_s=0.005),
            threshold=0.25,
        )
        assert {r["metric"] for r in regressions} == {
            "micro", "round_throughput", "batch_round_throughput",
            "lcm_round_throughput", "serve_request_latency",
        }
        lcm = next(
            r for r in regressions if r["metric"] == "lcm_round_throughput"
        )
        assert lcm["key"] == "async/16"
        assert lcm["ratio"] == pytest.approx(5.0)
        serve = next(
            r for r in regressions if r["metric"] == "serve_request_latency"
        )
        assert serve["key"] == "run/6"
        assert serve["ratio"] == pytest.approx(5.0)
        batched = next(
            r for r in regressions
            if r["metric"] == "batch_round_throughput"
        )
        assert batched["key"] == "numpy/16"
        assert batched["ratio"] == pytest.approx(5.0)
        micro = next(r for r in regressions if r["metric"] == "micro")
        assert micro["key"] == "safe_points/python/16"
        assert micro["ratio"] == pytest.approx(5.0)
        assert micro["baseline_s"] == pytest.approx(0.010)

    def test_baseline_is_median_of_window(self):
        # One noisy (slow) run in the history must not inflate the
        # baseline: the median of {10, 10, 100} ms is 10 ms, so a 50 ms
        # current run still regresses.
        history = _history(_doc(), _doc(micro_s=0.100), _doc())
        regressions = check_regressions(history, _doc(micro_s=0.050))
        assert any(r["metric"] == "micro" for r in regressions)
        assert all(
            r["baseline_s"] == pytest.approx(0.010)
            for r in regressions
            if r["metric"] == "micro"
        )

    def test_window_limits_which_runs_count(self):
        # With window=1 only the latest (slow) run forms the baseline,
        # so the same current document now passes.
        history = _history(
            _doc(), _doc(), _doc(micro_s=0.100, round_s=1.0)
        )
        slow = _doc(micro_s=0.050, round_s=0.500)
        assert check_regressions(history, slow, window=1) == []
        assert check_regressions(history, slow, window=3)

    def test_unmeasured_keys_are_skipped(self):
        # Growing the size matrix cannot fail the gate: keys with no
        # history samples are not gated at all.
        history = _history(_doc())
        grown = _doc()
        grown["micro"].append(
            {"name": "safe_points", "backend": "python", "n": 256,
             "best_s": 9.9, "mean_s": 9.9}
        )
        grown["round_throughput"].append(
            {"backend": "python", "n": 256, "round_s": 9.9,
             "robots_per_s": 256 / 9.9}
        )
        assert check_regressions(history, grown) == []

    def test_empty_history_gates_nothing(self):
        assert check_regressions(_history(), _doc()) == []

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            check_regressions(_history(), _doc(), threshold=-0.1)
        with pytest.raises(ValueError):
            check_regressions(_history(), _doc(), window=0)

    def test_speedups_present_when_numpy_available(self):
        document = run_bench(sizes=[16], repeats=1)
        if "numpy" in kernels.available_backends():
            by_metric = {
                entry["metric"]: entry for entry in document["speedups"]
            }
            assert set(by_metric) == {
                "round_throughput", "batch_round_throughput"
            }
            for entry in by_metric.values():
                assert entry["n"] == 16
                assert entry["speedup"] > 0.0
            batched = document["batch_round_throughput"]
            assert len(batched) == 1
            assert batched[0]["per_seed_round_s"] == pytest.approx(
                batched[0]["round_s"] / batched[0]["n_sims"]
            )
        else:
            assert document["speedups"] == []
            assert document["batch_round_throughput"] == []

    def test_batched_gate_normalizes_per_seed(self):
        # Retuning n_sims must not dodge the gate: the per-seed time is
        # what is gated, so the same per_seed_round_s under a different
        # n_sims passes while a genuinely slower per-seed time fails.
        history = _history(_doc(batch_seed_s=0.001))
        retuned = _doc(batch_seed_s=0.001)
        retuned["batch_round_throughput"][0].update(
            n_sims=64, round_s=0.064
        )
        assert check_regressions(history, retuned) == []
        slower = _doc(batch_seed_s=0.010)
        regressions = check_regressions(history, slower)
        assert any(
            r["metric"] == "batch_round_throughput" for r in regressions
        )
