"""Smoke tests for the JSON benchmark harness (not a benchmark run)."""

import json

from repro.bench import SCHEMA, run_bench, write_bench
from repro.geometry import kernels


class TestBenchDocument:
    def test_schema_and_sections(self, tmp_path):
        document = run_bench(sizes=[8], repeats=1)
        assert document["schema"] == SCHEMA
        assert document["sizes"] == [8]
        names = {entry["name"] for entry in document["micro"]}
        assert names == {
            "configuration",
            "view_table",
            "safe_points",
            "geometric_median",
        }
        for entry in document["micro"]:
            assert entry["best_s"] > 0.0
            assert entry["backend"] in kernels.available_backends()
        for entry in document["round_throughput"]:
            assert entry["robots_per_s"] > 0.0

        path = tmp_path / "bench.json"
        write_bench(document, str(path))
        assert json.loads(path.read_text())["schema"] == SCHEMA

    def test_speedups_present_when_numpy_available(self):
        document = run_bench(sizes=[16], repeats=1)
        if "numpy" in kernels.available_backends():
            assert len(document["speedups"]) == 1
            entry = document["speedups"][0]
            assert entry["n"] == 16
            assert entry["speedup"] > 0.0
        else:
            assert document["speedups"] == []
