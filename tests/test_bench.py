"""Smoke tests for the JSON benchmark harness (not a benchmark run)."""

import json

import pytest

from repro.bench import (
    HISTORY_SCHEMA,
    SCHEMA,
    load_history,
    run_bench,
    write_bench,
)
from repro.geometry import kernels


class TestBenchDocument:
    def test_schema_and_sections(self, tmp_path):
        document = run_bench(sizes=[8], repeats=1)
        assert document["schema"] == SCHEMA
        assert document["sizes"] == [8]
        names = {entry["name"] for entry in document["micro"]}
        assert names == {
            "configuration",
            "view_table",
            "safe_points",
            "geometric_median",
        }
        for entry in document["micro"]:
            assert entry["best_s"] > 0.0
            assert entry["backend"] in kernels.available_backends()
        for entry in document["round_throughput"]:
            assert entry["robots_per_s"] > 0.0

        path = tmp_path / "bench.json"
        write_bench(document, str(path))
        payload = json.loads(path.read_text())
        assert payload["schema"] == HISTORY_SCHEMA
        assert payload["latest"]["schema"] == SCHEMA

    def test_two_writes_keep_both_history_entries(self, tmp_path):
        path = tmp_path / "bench.json"
        first = {"schema": SCHEMA, "generated_at": "2026-01-01T00:00:00"}
        second = {"schema": SCHEMA, "generated_at": "2026-01-02T00:00:00"}
        write_bench(first, str(path))
        write_bench(second, str(path))
        payload = json.loads(path.read_text())
        assert payload["schema"] == HISTORY_SCHEMA
        assert len(payload["runs"]) == 2
        assert payload["latest"] == second
        stamps = [run["recorded_at"] for run in payload["runs"]]
        assert stamps == ["2026-01-01T00:00:00", "2026-01-02T00:00:00"]

    def test_legacy_single_document_becomes_first_entry(self, tmp_path):
        path = tmp_path / "bench.json"
        legacy = {"schema": SCHEMA, "generated_at": "2025-12-31T00:00:00"}
        path.write_text(json.dumps(legacy))
        fresh = {"schema": SCHEMA, "generated_at": "2026-01-01T00:00:00"}
        write_bench(fresh, str(path))
        payload = json.loads(path.read_text())
        assert len(payload["runs"]) == 2
        assert payload["runs"][0]["document"] == legacy
        assert payload["runs"][0]["git_sha"] is None
        assert payload["latest"] == fresh

    def test_foreign_file_fails_loudly(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError):
            load_history(str(path))
        with pytest.raises(ValueError):
            write_bench({"schema": SCHEMA}, str(path))

    def test_speedups_present_when_numpy_available(self):
        document = run_bench(sizes=[16], repeats=1)
        if "numpy" in kernels.available_backends():
            assert len(document["speedups"]) == 1
            entry = document["speedups"][0]
            assert entry["n"] == 16
            assert entry["speedup"] > 0.0
        else:
            assert document["speedups"] == []
